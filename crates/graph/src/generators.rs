//! Synthetic graph generators.
//!
//! The Buffalo paper evaluates on public datasets (Cora … OGBN-papers).
//! This reproduction has no dataset downloads, so [`crate::datasets`]
//! synthesizes calibrated stand-ins from the models here:
//!
//! * [`erdos_renyi`] — binomial random graphs (no clustering, no tail);
//!   used for the small citation-style datasets.
//! * [`barabasi_albert`] — preferential attachment with optional
//!   triad-closure (Holme–Kim), producing the power-law degree tails that
//!   cause bucket explosion *and* tunable clustering for Eq. 1.
//! * [`watts_strogatz`] — small-world ring rewiring, high clustering with
//!   near-regular degrees.
//! * [`rmat`] — recursive-matrix graphs with skewed quadrant probabilities.

use crate::csr::{CsrGraph, NodeId};
use crate::error::GraphError;
use crate::GraphBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn invalid(name: &'static str, message: impl Into<String>) -> GraphError {
    GraphError::InvalidParameter {
        name,
        message: message.into(),
    }
}

/// Erdős–Rényi `G(n, p)` by geometric edge skipping (O(edges)).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Result<CsrGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(invalid("p", format!("probability {p} not in [0, 1]")));
    }
    let mut b = GraphBuilder::new(n);
    if p > 0.0 && n > 1 {
        let mut rng = StdRng::seed_from_u64(seed);
        let lq = (1.0 - p).ln();
        // Iterate over the strict upper triangle using skip lengths drawn
        // from the geometric distribution.
        let total = n * (n - 1) / 2;
        let mut idx: f64 = -1.0;
        loop {
            let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            idx += if p >= 1.0 {
                1.0
            } else {
                1.0 + (r.ln() / lq).floor()
            };
            if idx >= total as f64 {
                break;
            }
            let k = idx as usize;
            // Invert the triangular index.
            let i = ((((8 * k + 1) as f64).sqrt() - 1.0) / 2.0) as usize;
            let i = if (i + 1) * (i + 2) / 2 <= k { i + 1 } else { i };
            let j = k - i * (i + 1) / 2;
            b.add_edge((i + 1) as NodeId, j as NodeId);
        }
    }
    Ok(b.build_undirected())
}

/// Barabási–Albert preferential attachment with Holme–Kim triad closure.
///
/// Each new node attaches `m` edges. The first target is chosen by
/// preferential attachment; each subsequent edge closes a triangle with
/// probability `triad_p` (connecting to a random neighbor of the previous
/// target), otherwise falls back to preferential attachment. `triad_p = 0`
/// yields classic BA; larger values raise the clustering coefficient
/// without destroying the power-law tail.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0`, `n <= m`, or
/// `triad_p` is outside `[0, 1]`.
pub fn barabasi_albert(
    n: usize,
    m: usize,
    triad_p: f64,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if m == 0 {
        return Err(invalid("m", "must attach at least one edge per node"));
    }
    if n <= m {
        return Err(invalid("n", format!("need n > m, got n={n} m={m}")));
    }
    if !(0.0..=1.0).contains(&triad_p) {
        return Err(invalid("triad_p", format!("{triad_p} not in [0, 1]")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is sampling proportionally to degree.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // adjacency for triad closure lookups (only needed during generation)
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    // Seed clique over the first m+1 nodes.
    for i in 0..=m {
        for j in 0..i {
            let (u, v) = (i as NodeId, j as NodeId);
            b.add_edge(u, v);
            targets.push(u);
            targets.push(v);
            adj[i].push(v);
            adj[j].push(u);
        }
    }
    for v in (m + 1)..n {
        let v = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        let mut last: Option<NodeId> = None;
        while chosen.len() < m {
            let candidate = if let Some(prev) = last.filter(|_| rng.gen::<f64>() < triad_p) {
                // Triad closure: pick a random neighbor of the previous
                // target that is not already chosen.
                let nb = &adj[prev as usize];
                let c = nb[rng.gen_range(0..nb.len())];
                if c == v || chosen.contains(&c) {
                    // fall back to preferential attachment this round
                    targets[rng.gen_range(0..targets.len())]
                } else {
                    c
                }
            } else {
                targets[rng.gen_range(0..targets.len())]
            };
            if candidate == v || chosen.contains(&candidate) {
                continue;
            }
            chosen.push(candidate);
            last = Some(candidate);
        }
        for &t in &chosen {
            b.add_edge(v, t);
            targets.push(v);
            targets.push(t);
            adj[v as usize].push(t);
            adj[t as usize].push(v);
        }
    }
    Ok(b.build_undirected())
}

/// Watts–Strogatz small-world graph: a ring lattice where each node connects
/// to its `k` nearest neighbors (`k` rounded down to even), with each edge
/// rewired to a random endpoint with probability `beta`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k < 2`, `k >= n`, or `beta`
/// is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph, GraphError> {
    if k < 2 || k >= n {
        return Err(invalid("k", format!("need 2 <= k < n, got k={k} n={n}")));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(invalid("beta", format!("{beta} not in [0, 1]")));
    }
    let half = k / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * half);
    for i in 0..n {
        for d in 1..=half {
            let j = (i + d) % n;
            let (src, dst) = if beta > 0.0 && rng.gen::<f64>() < beta {
                // Rewire to a uniform random non-self target.
                let mut t = rng.gen_range(0..n);
                while t == i {
                    t = rng.gen_range(0..n);
                }
                (i, t)
            } else {
                (i, j)
            };
            b.add_edge(src as NodeId, dst as NodeId);
        }
    }
    Ok(b.build_undirected())
}

/// Community-structured graph with a power-law cross-community backbone.
///
/// Nodes are partitioned into consecutive communities of `community_size`;
/// within each community, edges are Erdős–Rényi with probability `p_in`
/// (driving the clustering coefficient toward `p_in · (d_in / d)²`). On
/// top, every node attaches `m_cross` edges by preferential attachment in
/// node order, producing the heavy-tailed hub degrees of social graphs.
/// This models datasets like Reddit and OGBN-products, whose high
/// clustering (0.41–0.58) cannot be reached by triad closure alone at
/// their average degrees.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `community_size < 2`,
/// `p_in` is outside `[0, 1]`, or `m_cross == 0`.
pub fn community_clustered(
    n: usize,
    community_size: usize,
    p_in: f64,
    m_cross: usize,
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if community_size < 2 {
        return Err(invalid("community_size", "must be at least 2"));
    }
    if !(0.0..=1.0).contains(&p_in) {
        return Err(invalid("p_in", format!("{p_in} not in [0, 1]")));
    }
    if m_cross == 0 {
        return Err(invalid("m_cross", "must attach at least one cross edge"));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let expected = (n as f64 * (community_size as f64 * p_in / 2.0 + m_cross as f64)) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected);
    // Dense intra-community edges.
    let mut start = 0usize;
    while start < n {
        let end = (start + community_size).min(n);
        for i in start..end {
            for j in (i + 1)..end {
                if rng.gen::<f64>() < p_in {
                    b.add_edge(i as NodeId, j as NodeId);
                }
            }
        }
        start = end;
    }
    // Preferential cross-community backbone, grown in node order so early
    // nodes become hubs (BA-style rich-get-richer).
    let mut targets: Vec<NodeId> = (0..community_size.min(n) as NodeId).collect();
    for v in 1..n {
        let v = v as NodeId;
        for _ in 0..m_cross {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != v {
                b.add_edge(v, t);
                targets.push(t);
            }
            targets.push(v);
        }
    }
    Ok(b.build_undirected())
}

/// R-MAT recursive-matrix generator. Produces `edge_factor * n` edges with
/// quadrant probabilities `(a, b, c)` (the fourth is `1 - a - b - c`).
/// Skewed probabilities (e.g. the Graph500 defaults `0.57, 0.19, 0.19`)
/// yield heavy-tailed degree distributions.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n` is not a power of two or
/// the probabilities are invalid.
pub fn rmat(
    n: usize,
    edge_factor: usize,
    (a, b, c): (f64, f64, f64),
    seed: u64,
) -> Result<CsrGraph, GraphError> {
    if !n.is_power_of_two() {
        return Err(invalid("n", format!("{n} is not a power of two")));
    }
    let d = 1.0 - a - b - c;
    if a < 0.0 || b < 0.0 || c < 0.0 || d < -1e-9 {
        return Err(invalid(
            "a/b/c",
            "quadrant probabilities must be >= 0 and sum to <= 1",
        ));
    }
    let levels = n.trailing_zeros();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, edge_factor * n);
    for _ in 0..edge_factor * n {
        let (mut x, mut y) = (0usize, 0usize);
        for _ in 0..levels {
            let r: f64 = rng.gen();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x = (x << 1) | dx;
            y = (y << 1) | dy;
        }
        builder.add_edge(x as NodeId, y as NodeId);
    }
    Ok(builder.build_undirected())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn er_density_matches_p() {
        let n = 2_000;
        let p = 0.005;
        let g = erdos_renyi(n, p, 9).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let actual = (g.num_edges() / 2) as f64;
        assert!(
            (actual - expected).abs() / expected < 0.1,
            "expected ~{expected}, got {actual}"
        );
    }

    #[test]
    fn er_rejects_bad_probability() {
        assert!(erdos_renyi(10, 1.5, 0).is_err());
        assert!(erdos_renyi(10, -0.1, 0).is_err());
    }

    #[test]
    fn er_extremes() {
        let g = erdos_renyi(50, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 0);
        let g = erdos_renyi(20, 1.0, 1).unwrap();
        assert_eq!(g.num_edges(), 20 * 19);
    }

    #[test]
    fn ba_average_degree_is_about_2m() {
        let g = barabasi_albert(5_000, 4, 0.0, 2).unwrap();
        let avg = g.average_degree();
        assert!((avg - 8.0).abs() < 0.5, "avg degree {avg}");
    }

    #[test]
    fn ba_has_heavy_tail() {
        let g = barabasi_albert(10_000, 3, 0.0, 5).unwrap();
        assert!(g.max_degree() > 20 * g.average_degree() as usize / 2);
    }

    #[test]
    fn triad_closure_raises_clustering() {
        let low = barabasi_albert(3_000, 4, 0.0, 8).unwrap();
        let high = barabasi_albert(3_000, 4, 0.9, 8).unwrap();
        let c_low = stats::clustering_coefficient_exact(&low);
        let c_high = stats::clustering_coefficient_exact(&high);
        assert!(c_high > c_low * 1.5, "low={c_low} high={c_high}");
    }

    #[test]
    fn ba_rejects_bad_parameters() {
        assert!(barabasi_albert(5, 5, 0.0, 0).is_err());
        assert!(barabasi_albert(10, 0, 0.0, 0).is_err());
        assert!(barabasi_albert(10, 2, 1.5, 0).is_err());
    }

    #[test]
    fn ws_ring_is_regular() {
        let g = watts_strogatz(100, 6, 0.0, 0).unwrap();
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn ws_preserves_edge_count_under_rewiring() {
        let g0 = watts_strogatz(500, 8, 0.0, 3).unwrap();
        let g1 = watts_strogatz(500, 8, 0.3, 3).unwrap();
        // Rewiring can create duplicates that dedup removes, so allow a
        // small deficit but no growth.
        assert!(g1.num_edges() <= g0.num_edges());
        assert!(g1.num_edges() as f64 > 0.95 * g0.num_edges() as f64);
    }

    #[test]
    fn ws_rejects_bad_parameters() {
        assert!(watts_strogatz(10, 1, 0.0, 0).is_err());
        assert!(watts_strogatz(10, 10, 0.0, 0).is_err());
        assert!(watts_strogatz(10, 4, 2.0, 0).is_err());
    }

    #[test]
    fn community_graph_is_clustered_and_heavy_tailed() {
        let g = community_clustered(10_000, 24, 0.7, 4, 5).unwrap();
        let c = stats::clustering_coefficient_exact(&g);
        assert!(c > 0.2, "clustering {c} too low");
        // The preferential backbone must create hubs.
        assert!(g.max_degree() as f64 > 8.0 * g.average_degree());
    }

    #[test]
    fn community_clustering_tracks_p_in() {
        let lo = community_clustered(5_000, 20, 0.3, 3, 8).unwrap();
        let hi = community_clustered(5_000, 20, 0.9, 3, 8).unwrap();
        let c_lo = stats::clustering_coefficient_exact(&lo);
        let c_hi = stats::clustering_coefficient_exact(&hi);
        assert!(c_hi > 1.5 * c_lo, "lo={c_lo} hi={c_hi}");
    }

    #[test]
    fn community_rejects_bad_parameters() {
        assert!(community_clustered(100, 1, 0.5, 3, 0).is_err());
        assert!(community_clustered(100, 10, 1.5, 3, 0).is_err());
        assert!(community_clustered(100, 10, 0.5, 0, 0).is_err());
    }

    #[test]
    fn rmat_requires_power_of_two() {
        assert!(rmat(1000, 8, (0.57, 0.19, 0.19), 0).is_err());
        assert!(rmat(1024, 8, (0.57, 0.19, 0.19), 0).is_ok());
    }

    #[test]
    fn rmat_skew_produces_heavier_tail_than_uniform() {
        let skewed = rmat(4096, 8, (0.57, 0.19, 0.19), 4).unwrap();
        let uniform = rmat(4096, 8, (0.25, 0.25, 0.25), 4).unwrap();
        assert!(skewed.max_degree() > 2 * uniform.max_degree());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = barabasi_albert(1_000, 3, 0.2, 77).unwrap();
        let b = barabasi_albert(1_000, 3, 0.2, 77).unwrap();
        assert_eq!(a, b);
        let c = barabasi_albert(1_000, 3, 0.2, 78).unwrap();
        assert_ne!(a, c);
    }
}
