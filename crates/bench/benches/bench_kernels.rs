//! Criterion bench: the parallel CPU compute kernels — tiled matmul and
//! block-parallel SAGE aggregation — serial vs thread-pooled.
//!
//! On a multi-core host the 4-thread rows should show near-linear
//! speedup at 512×512 and above; on a single-core container (the CI
//! image) all configs time-slice one CPU, so compare shapes rather than
//! thread counts there.

use buffalo_blocks::Block;
use buffalo_core::models::SageLayer;
use buffalo_memsim::AggregatorKind;
use buffalo_par::Parallelism;
use buffalo_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn config(threads: usize) -> Parallelism {
    Parallelism {
        threads,
        min_parallel_rows: 1,
        ..Parallelism::auto()
    }
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[256usize, 512] {
        let a = Tensor::xavier(n, n, 1);
        let b = Tensor::xavier(n, n, 2);
        for &threads in &[1usize, 4] {
            let par = config(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("{n}x{n}"), format!("{threads}t")),
                &(&a, &b),
                |bch, (a, b)| bch.iter(|| a.matmul_with(b, &par)),
            );
        }
    }
    group.finish();
}

/// A block where every destination averages `deg` sources.
fn dense_block(n_dst: usize, n_src: usize, deg: usize) -> Block {
    let dst_nodes: Vec<u32> = (0..n_dst as u32).collect();
    let src_nodes: Vec<u32> = (0..n_src as u32).collect();
    let offsets: Vec<usize> = (0..=n_dst).map(|i| i * deg).collect();
    let indices: Vec<u32> = (0..n_dst * deg)
        .map(|e| ((e * 2654435761) % n_src) as u32)
        .collect();
    Block::from_parts(dst_nodes, src_nodes, offsets, indices)
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sage_aggregate");
    group.sample_size(10);
    let n_dst = 2_048;
    let n_src = 4_096;
    let dim = 64;
    let block = dense_block(n_dst, n_src, 12);
    let h = Tensor::xavier(n_src, dim, 3);
    let layer = SageLayer::new(dim, dim, AggregatorKind::Mean, false, 5);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("mean_forward", format!("{threads}t")),
            &(&block, &h),
            |bch, (block, h)| {
                config(threads).install();
                bch.iter(|| layer.forward(block, h));
            },
        );
    }
    Parallelism::auto().install();
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_aggregate);
criterion_main!(benches);
