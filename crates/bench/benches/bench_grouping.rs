//! Criterion bench: the Buffalo scheduler (degree bucketing + splitting +
//! memory-balanced grouping) — the cost that replaces METIS.

use buffalo_bucketing::BuffaloScheduler;
use buffalo_graph::{generators, NodeId};
use buffalo_memsim::{AggregatorKind, GnnShape};
use buffalo_sampling::BatchSampler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_scheduler(c: &mut Criterion) {
    let g = generators::barabasi_albert(30_000, 8, 0.5, 9).unwrap();
    let shape = GnnShape::new(128, 256, 2, 16, AggregatorKind::Lstm);
    let mut group = c.benchmark_group("buffalo_scheduler");
    group.sample_size(10);
    for &num_seeds in &[1_000usize, 4_000] {
        let seeds: Vec<NodeId> = (0..num_seeds as NodeId).collect();
        let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 5);
        let scheduler = BuffaloScheduler::new(shape.clone(), vec![10, 25], 0.3);
        // A budget that forces several groups, exercising the K loop.
        let single = scheduler
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap()
            .group_estimates[0];
        for &div in &[1u64, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("seeds{num_seeds}"), format!("k~{div}")),
                &div,
                |b, &div| {
                    b.iter(|| {
                        scheduler
                            .schedule(&batch.graph, batch.num_seeds, single / div * 11 / 10)
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
