//! Criterion bench: baseline partitioners (METIS multilevel, Betty
//! REG+METIS) vs Buffalo scheduling — the comparison behind Figures 5
//! and 11.

use buffalo_bucketing::BuffaloScheduler;
use buffalo_graph::{generators, NodeId};
use buffalo_memsim::{AggregatorKind, GnnShape};
use buffalo_partition::{metis_kway, BettyPartitioner, MetisOptions};
use buffalo_sampling::BatchSampler;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_partitioners(c: &mut Criterion) {
    let g = generators::barabasi_albert(30_000, 8, 0.5, 11).unwrap();
    let seeds: Vec<NodeId> = (0..2_000).collect();
    let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 7);
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    group.bench_function("metis_whole_subgraph_k8", |b| {
        b.iter(|| metis_kway(&batch.graph, 8, MetisOptions::default()))
    });
    group.bench_function("betty_reg_plus_metis_k8", |b| {
        let p = BettyPartitioner::default();
        b.iter(|| p.partition(&batch.graph, batch.num_seeds, 8).unwrap())
    });
    group.bench_function("buffalo_scheduler_k8ish", |b| {
        let shape = GnnShape::new(128, 256, 2, 16, AggregatorKind::Lstm);
        let scheduler = BuffaloScheduler::new(shape, vec![10, 25], 0.3);
        let single = scheduler
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap()
            .group_estimates[0];
        b.iter(|| {
            scheduler
                .schedule(&batch.graph, batch.num_seeds, single / 8 * 11 / 10)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
