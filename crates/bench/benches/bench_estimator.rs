//! Criterion bench: memory-estimation primitives — closure counting and
//! the redundancy-aware group estimator (must stay negligible next to
//! partitioning, or the scheduler loses its reason to exist).

use buffalo_bucketing::{closure_counts, degree_bucketing, ClosureScratch};
use buffalo_graph::{generators, NodeId};
use buffalo_memsim::estimate::{group_mem_estimate, mem_from_counts, BucketStats};
use buffalo_memsim::{AggregatorKind, GnnShape};
use buffalo_sampling::BatchSampler;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_estimation(c: &mut Criterion) {
    let g = generators::barabasi_albert(30_000, 8, 0.5, 17).unwrap();
    let seeds: Vec<NodeId> = (0..2_000).collect();
    let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 1);
    let shape = GnnShape::new(128, 256, 2, 16, AggregatorKind::Lstm);
    let buckets = degree_bucketing(&batch.graph, batch.num_seeds, 10);
    let mut group = c.benchmark_group("estimation");
    group.sample_size(20);
    group.bench_function("closure_counts_all_buckets", |b| {
        let mut scratch = ClosureScratch::default();
        b.iter(|| {
            buckets
                .iter()
                .map(|bk| closure_counts(&batch.graph, &bk.nodes, 2, &mut scratch))
                .count()
        })
    });
    // Precompute entries for the pure-arithmetic estimator bench.
    let mut scratch = ClosureScratch::default();
    let entries: Vec<(BucketStats, u64)> = buckets
        .iter()
        .map(|bk| {
            let counts = closure_counts(&batch.graph, &bk.nodes, 2, &mut scratch);
            let stats = BucketStats {
                degree: bk.degree,
                num_output: bk.volume(),
                num_input: counts.output_layer_inputs(),
            };
            (stats, mem_from_counts(&counts, &shape))
        })
        .collect();
    group.bench_function("group_mem_estimate", |b| {
        b.iter(|| group_mem_estimate(&entries, 0.3))
    });
    group.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
