//! Criterion bench: block generation, Buffalo fast path vs Betty-style
//! checked path (the microbenchmark behind Figure 12).

use buffalo_blocks::{generate_blocks_checked, generate_blocks_fast, GenerateOptions};
use buffalo_graph::{generators, NodeId};
use buffalo_sampling::BatchSampler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_blocks(c: &mut Criterion) {
    let g = generators::barabasi_albert(30_000, 8, 0.5, 7).unwrap();
    let mut group = c.benchmark_group("block_generation");
    group.sample_size(10);
    for &num_seeds in &[1_000usize, 4_000] {
        let seeds: Vec<NodeId> = (0..num_seeds as NodeId).collect();
        let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 3);
        group.bench_with_input(
            BenchmarkId::new("buffalo_fast", num_seeds),
            &batch,
            |b, batch| {
                b.iter(|| {
                    generate_blocks_fast(
                        &batch.graph,
                        batch.num_seeds,
                        2,
                        GenerateOptions::default(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("betty_checked", num_seeds),
            &batch,
            |b, batch| {
                b.iter(|| {
                    generate_blocks_checked(&batch.graph, &batch.global_ids, &g, batch.num_seeds, 2)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blocks);
criterion_main!(benches);
