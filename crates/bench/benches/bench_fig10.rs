//! Criterion bench: one full simulated iteration per strategy — the
//! end-to-end comparison behind Figure 10.

use buffalo_core::sim::{simulate_iteration, SimContext, Strategy};
use buffalo_graph::{generators, NodeId};
use buffalo_memsim::{AggregatorKind, CostModel, DeviceMemory, GnnShape};
use buffalo_sampling::BatchSampler;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_iteration(c: &mut Criterion) {
    let g = generators::barabasi_albert(30_000, 8, 0.5, 13).unwrap();
    let seeds: Vec<NodeId> = (0..2_000).collect();
    let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 9);
    let shape = GnnShape::new(128, 256, 2, 16, AggregatorKind::Lstm);
    let ctx = SimContext {
        shape: &shape,
        fanouts: &[10, 25],
        clustering: 0.3,
        original: &g,
    };
    let cost = CostModel::rtx6000();
    let unlimited = DeviceMemory::new(u64::MAX);
    let whole = simulate_iteration(&batch, ctx, Strategy::Full, &unlimited, &cost).unwrap();
    let budget = DeviceMemory::new(whole.peak_mem_bytes / 4 * 11 / 10);
    let mut group = c.benchmark_group("iteration");
    group.sample_size(10);
    group.bench_function("full", |b| {
        b.iter(|| simulate_iteration(&batch, ctx, Strategy::Full, &unlimited, &cost).unwrap())
    });
    group.bench_function("buffalo_k4ish", |b| {
        b.iter(|| simulate_iteration(&batch, ctx, Strategy::Buffalo, &budget, &cost).unwrap())
    });
    group.bench_function("betty_k4", |b| {
        b.iter(|| {
            simulate_iteration(&batch, ctx, Strategy::Betty { k: 4 }, &unlimited, &cost).unwrap()
        })
    });
    group.bench_function("range_k4", |b| {
        b.iter(|| {
            simulate_iteration(&batch, ctx, Strategy::Range { k: 4 }, &unlimited, &cost).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
