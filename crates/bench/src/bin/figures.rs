//! Regenerates every table and figure of the Buffalo paper.
//!
//! ```text
//! figures <id>...            run specific experiments (e.g. `figures fig10 tab3`)
//! figures all                run everything
//! figures --quick <id>       quarter-size batches, fewer sweep points
//! figures --write-bench <id> also (re)write the experiment's BENCH_*.json
//! figures --list             list experiment ids
//! ```

use buffalo_bench::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quick = false;
    let mut write_bench = false;
    let mut ids: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--write-bench" | "-w" => write_bench = true,
            "--list" | "-l" => {
                for id in experiments::ALL_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL_IDS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: figures [--quick] [--write-bench] <id>... | all | --list");
        eprintln!("ids: {}", experiments::ALL_IDS.join(", "));
        return ExitCode::FAILURE;
    }
    for id in &ids {
        if let Err(e) = experiments::run(id, quick, write_bench) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
