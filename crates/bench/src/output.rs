//! Plain-text table output for the `figures` binary.

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (truncated/padded to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with adaptive precision.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Formats bytes as GiB/MiB.
pub fn mem(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= (1u64 << 30) as f64 {
        format!("{:.2}GB", b / (1u64 << 30) as f64)
    } else {
        format!("{:.1}MB", b / (1u64 << 20) as f64)
    }
}

/// Writes a `BENCH_*.json` artifact to the repo root, gated on
/// `--write-bench`.
///
/// Without the flag the experiment still runs and prints its table, but
/// the committed artifact is left untouched — so casual `figures` runs
/// (and CI smoke runs on arbitrary hardware) never dirty the tree, and
/// the JSON only changes when the harness regenerates it deliberately.
pub fn write_artifact(name: &str, json: &str, write: bool) {
    if !write {
        println!("skipped {name} (pass --write-bench to regenerate)");
        return;
    }
    if let Err(e) = std::fs::write(name, json) {
        eprintln!("warning: could not write {name}: {e}");
    } else {
        println!("wrote {name}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(["a", "metric"]);
        t.row(["x", "1"]);
        t.row(["longer", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("metric"));
        assert!(lines[3].contains("longer"));
        // All data lines same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn row_pads_missing_cells() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0025), "2.50ms");
        assert_eq!(secs(0.0000025), "2.5us");
        assert_eq!(mem(1 << 30), "1.00GB");
        assert_eq!(mem(1 << 20), "1.0MB");
    }
}
