//! Workload preparation shared by the `figures` binary and the Criterion
//! benches.

use buffalo_graph::datasets::{self, Dataset, DatasetName};
use buffalo_graph::{stats, NodeId};
use buffalo_memsim::{AggregatorKind, GnnShape};
use buffalo_sampling::{Batch, BatchSampler};

/// The paper's default sampling fanouts ("cut-off 10,25", Table III).
pub const DEFAULT_FANOUTS: [usize; 2] = [10, 25];

/// The paper's primary memory budget: the RTX 6000's 24 GB.
pub const RTX6000_GIB: f64 = 24.0;

/// Default training-batch seed count per dataset — roughly the training
/// split of each graph, scaled with the dataset. `quick` mode quarters
/// these so every experiment stays interactive.
pub fn default_seed_count(name: DatasetName, quick: bool) -> usize {
    // Roughly the training-split share of each graph at our scale — the
    // full-batch regime the paper's memory-wall experiments run in
    // (e.g. OGBN-arxiv trains on ~54 % of its nodes).
    let full = match name {
        DatasetName::Cora => 1_355,
        DatasetName::Pubmed => 9_858,
        DatasetName::Reddit => 30_000,
        DatasetName::OgbnArxiv => 45_000,
        DatasetName::OgbnProducts => 100_000,
        DatasetName::OgbnPapers => 200_000,
    };
    if quick {
        full / 4
    } else {
        full
    }
}

/// A prepared workload: dataset, its clustering coefficient, and one
/// sampled training batch.
pub struct Workload {
    /// Dataset name.
    pub name: DatasetName,
    /// The synthetic dataset.
    pub dataset: Dataset,
    /// Average clustering coefficient `C` (sampled for large graphs).
    pub clustering: f64,
    /// The sampled training batch.
    pub batch: Batch,
    /// Fanouts used for `batch`.
    pub fanouts: Vec<usize>,
}

impl Workload {
    /// The model shape the paper's main experiments use on this dataset:
    /// 2-layer GraphSAGE, hidden 512, LSTM aggregator.
    pub fn default_shape(&self) -> GnnShape {
        self.shape(512, AggregatorKind::Lstm)
    }

    /// A model shape with this dataset's feature/class dimensions.
    pub fn shape(&self, hidden: usize, aggregator: AggregatorKind) -> GnnShape {
        GnnShape::new(
            self.dataset.spec.feat_dim,
            hidden,
            self.fanouts.len(),
            self.dataset.spec.num_classes,
            aggregator,
        )
    }
}

/// Loads a workload with the default seed count and fanouts.
pub fn load_workload(name: DatasetName, quick: bool) -> Workload {
    load_workload_with(
        name,
        default_seed_count(name, quick),
        DEFAULT_FANOUTS.to_vec(),
        42,
    )
}

/// Loads a workload with explicit batch size and fanouts.
pub fn load_workload_with(
    name: DatasetName,
    num_seeds: usize,
    fanouts: Vec<usize>,
    seed: u64,
) -> Workload {
    let dataset = datasets::load(name, seed);
    let clustering = if dataset.graph.num_nodes() <= stats::EXACT_CLUSTERING_LIMIT {
        stats::clustering_coefficient_exact(&dataset.graph)
    } else {
        stats::clustering_coefficient_sampled(&dataset.graph, 10_000, 50, seed)
    };
    let num_seeds = num_seeds.min(dataset.graph.num_nodes());
    // Seeds are a uniform random sample of the nodes — picking the lowest
    // ids would select the oldest (hub) nodes of the preferential
    // generators and skew every degree distribution.
    let seeds: Vec<NodeId> =
        buffalo_sampling::SeedBatches::new(dataset.graph.num_nodes(), num_seeds, seed ^ 0x5EED)
            .batch(0)
            .to_vec();
    let batch = BatchSampler::new(fanouts.clone()).sample(&dataset.graph, &seeds, seed ^ 0xABCD);
    Workload {
        name,
        dataset,
        clustering,
        batch,
        fanouts,
    }
}

/// GiB formatting helper (binary gibibytes, as the paper's GB figures).
pub fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_shrinks_batches() {
        for name in DatasetName::ALL {
            assert!(default_seed_count(name, true) < default_seed_count(name, false));
        }
    }

    #[test]
    fn workload_loads_cora() {
        let w = load_workload(DatasetName::Cora, true);
        assert_eq!(
            w.batch.num_seeds,
            default_seed_count(DatasetName::Cora, true)
        );
        assert!(w.clustering > 0.05);
        let s = w.default_shape();
        assert_eq!(s.feat_dim, 1433);
        assert_eq!(s.num_layers, 2);
    }

    #[test]
    fn gib_converts() {
        assert_eq!(gib(1 << 30), 1.0);
    }
}
