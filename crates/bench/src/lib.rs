//! Benchmark harness regenerating every table and figure of the Buffalo
//! paper.
//!
//! The [`context`] module prepares workloads (dataset + sampled batch +
//! graph statistics) with per-dataset defaults matching the paper's
//! experimental regime; [`experiments`] holds one module per figure/table;
//! [`output`] provides the plain-text table printer the `figures` binary
//! uses. Criterion benches under `benches/` reuse the same context.

#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod output;
