//! Table II (dataset characteristics) and Table III (memory estimation
//! error).

use crate::context::{load_workload, Workload};
use crate::output::Table;
use buffalo_blocks::{generate_blocks_fast, GenerateOptions};
use buffalo_graph::datasets::{self, DatasetName};
use buffalo_graph::stats;
use buffalo_memsim::{estimate, measure, AggregatorKind};

/// Table II: paper-reported vs measured characteristics of every dataset
/// stand-in (scale factors recorded per dataset).
pub fn tab2(_quick: bool) {
    let mut t = Table::new([
        "dataset",
        "scale",
        "nodes",
        "edges",
        "avg deg (paper)",
        "avg coef (paper)",
        "power law (paper)",
    ]);
    for spec in datasets::catalog() {
        let ds = datasets::load(spec.name, 42);
        let s = stats::summarize(&ds.graph, 42);
        t.row([
            spec.name.to_string(),
            format!("1/{}", spec.scale_factor),
            s.num_nodes.to_string(),
            (s.num_edges / 2).to_string(),
            format!("{:.1} ({:.1})", s.avg_degree, spec.paper_avg_degree),
            format!("{:.3} ({:.3})", s.avg_clustering, spec.paper_avg_coef),
            format!(
                "{} ({})",
                if s.power_law { "yes" } else { "no" },
                if spec.paper_power_law { "yes" } else { "no" }
            ),
        ]);
    }
    t.print();
    println!("(ogbn-papers is directed — the measured average degree is in-degree)");
}

/// The number of micro-batches Table III uses per dataset/aggregator.
fn tab3_batches(name: DatasetName, agg: AggregatorKind) -> u64 {
    match (name, agg) {
        (DatasetName::OgbnProducts | DatasetName::OgbnPapers, AggregatorKind::Lstm) => 16,
        (DatasetName::OgbnProducts | DatasetName::OgbnPapers, _) => 8,
        _ => 4,
    }
}

/// Evaluates the analytical estimator at the paper's granularity: split
/// the explosion bucket into exactly `k` micro-buckets (Algorithm 3 line
/// 5), group into `k` bucket groups with Algorithm 4, then compare every
/// group's Eq.-2 estimate against the exact measured footprint of the
/// micro-batch it generates.
fn estimation_error(w: &Workload, agg: AggregatorKind, k: u64) -> Option<(usize, f64)> {
    use buffalo_bucketing::{
        closure_counts, degree_bucketing, detect_explosion, mem_balanced_grouping,
        split_explosion_bucket, BucketEntry, ClosureScratch,
    };
    use buffalo_memsim::estimate::{mem_from_counts, BucketStats};
    let shape = w.shape(256, agg);
    let k = k as usize;
    let base = degree_bucketing(&w.batch.graph, w.batch.num_seeds, w.fanouts[0]);
    let explosion = detect_explosion(&base, 2.0);
    let mut buckets = Vec::new();
    for (i, b) in base.iter().enumerate() {
        if Some(i) == explosion {
            buckets.extend(split_explosion_bucket(b, k));
        } else {
            buckets.push(b.clone());
        }
    }
    let mut scratch = ClosureScratch::default();
    let entries: Vec<BucketEntry> = buckets
        .into_iter()
        .map(|bucket| {
            let counts = closure_counts(&w.batch.graph, &bucket.nodes, 2, &mut scratch);
            let stats = BucketStats {
                degree: bucket.degree,
                num_output: bucket.volume(),
                num_input: counts.output_layer_inputs(),
            };
            let mem_estimate =
                mem_from_counts(&counts, &shape).saturating_sub(shape.parameter_bytes());
            BucketEntry {
                bucket,
                stats,
                mem_estimate,
            }
        })
        .collect();
    let outcome =
        mem_balanced_grouping(&entries, k, u64::MAX, w.clustering, shape.parameter_bytes());
    let mut errors = Vec::new();
    for (group, &est) in outcome.groups.iter().zip(&outcome.group_estimates) {
        if group.is_empty() {
            continue;
        }
        let seeds: Vec<u32> = group
            .iter()
            .flat_map(|&i| entries[i].bucket.nodes.iter().copied())
            .collect();
        let micro = w.batch.restrict_to_seeds(&seeds);
        let blocks = generate_blocks_fast(
            &micro.graph,
            micro.num_seeds,
            shape.num_layers,
            GenerateOptions::default(),
        );
        let actual = measure::training_memory(&blocks, &shape).total();
        errors.push(estimate::relative_error(est, actual));
    }
    let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
    Some((k, mean))
}

/// Table III: relative error of the redundancy-aware memory estimator vs
/// the exact measured footprint, for LSTM and mean aggregators.
pub fn tab3(quick: bool) {
    let mut t = Table::new([
        "dataset",
        "cut-off",
        "lstm #batch",
        "lstm error %",
        "mean #batch",
        "mean error %",
    ]);
    let names = if quick {
        vec![DatasetName::Cora, DatasetName::OgbnArxiv]
    } else {
        DatasetName::ALL.to_vec()
    };
    for name in names {
        let w = load_workload(name, quick);
        let mut cells = vec![name.to_string(), "10,25".into()];
        for agg in [AggregatorKind::Lstm, AggregatorKind::Mean] {
            match estimation_error(&w, agg, tab3_batches(name, agg)) {
                Some((k, err)) => {
                    cells.push(k.to_string());
                    cells.push(format!("{:.2}", 100.0 * err));
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        t.row(cells);
    }
    t.print();
    println!("(paper: error rate below 10.02% in all cases)");
}
