//! Robustness experiment: training under injected device faults, written
//! to `BENCH_robustness.json`.
//!
//! One fault-free baseline plus several transient fault rates and a
//! mid-run budget shrink, all on the same workload with the same initial
//! weights. For each scenario we record the completion rate (iterations
//! that produced a gradient step), the recovery activity (injected
//! faults, recovery events), the wall-clock overhead over the baseline,
//! and — the headline determinism claim — whether the per-iteration loss
//! trail is bitwise identical to the fault-free run. Pure retries happen
//! before any forward/backward work, so transient-only scenarios must
//! reproduce the baseline losses exactly.

use crate::context::load_workload;
use crate::output::Table;
use buffalo_core::train::{BuffaloTrainer, RecoveryPolicy, TrainConfig};
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{
    AggregatorKind, CostModel, Device, DeviceMemory, FaultPlan, FaultyDevice, GnnShape,
};
use std::time::Instant;

const FANOUTS: [usize; 2] = [5, 10];

struct Scenario {
    name: &'static str,
    /// Transient fault probability per allocation (0 = none).
    rate: f64,
    spec: Option<&'static str>,
}

struct Outcome {
    name: String,
    rate: f64,
    iterations: usize,
    completed: usize,
    injected: u64,
    events: usize,
    wall_s: f64,
    losses: Vec<f32>,
    headroom: f64,
}

impl Outcome {
    fn completion_rate(&self) -> f64 {
        self.completed as f64 / self.iterations.max(1) as f64
    }

    fn overhead(&self, baseline_s: f64) -> f64 {
        if baseline_s > 0.0 {
            self.wall_s / baseline_s - 1.0
        } else {
            0.0
        }
    }
}

fn run_scenario(
    sc: &Scenario,
    iters: usize,
    config: &TrainConfig,
    w: &crate::context::Workload,
    budget: u64,
    cost: &CostModel,
) -> Outcome {
    let faulty = sc.spec.map(|spec| {
        FaultyDevice::new(
            DeviceMemory::new(budget),
            FaultPlan::parse(spec).expect("scenario fault spec parses"),
        )
    });
    let plain;
    let device: &dyn Device = match &faulty {
        Some(f) => f,
        None => {
            plain = DeviceMemory::new(budget);
            &plain
        }
    };
    let mut trainer =
        BuffaloTrainer::new(config.clone(), w.clustering).with_recovery(RecoveryPolicy {
            max_retries: 8,
            ..RecoveryPolicy::default()
        });
    let mut out = Outcome {
        name: sc.name.to_string(),
        rate: sc.rate,
        iterations: iters,
        completed: 0,
        injected: 0,
        events: 0,
        wall_s: 0.0,
        losses: Vec::with_capacity(iters),
        headroom: 1.0,
    };
    let t = Instant::now();
    for _ in 0..iters {
        match trainer.train_iteration(&w.dataset, &w.batch, device, cost) {
            Ok(stats) => {
                out.completed += 1;
                out.events += stats.recovery.len();
                out.losses.push(stats.loss);
            }
            Err(e) => {
                // The iteration contributed no gradient step; carry on so
                // the completion rate reflects how often recovery failed.
                eprintln!("  [{}] iteration failed: {e}", sc.name);
            }
        }
    }
    out.wall_s = t.elapsed().as_secs_f64();
    out.headroom = trainer.headroom_multiplier();
    if let Some(f) = &faulty {
        out.injected = f.counters().injected;
    }
    out
}

/// Runs the fault-injection robustness sweep; with `write_bench` it also
/// rewrites `BENCH_robustness.json`.
pub fn robustness(quick: bool, write_bench: bool) {
    let w = load_workload(DatasetName::Cora, quick);
    let cost = CostModel::rtx6000();
    let iters = if quick { 4 } else { 10 };
    let config = TrainConfig {
        shape: GnnShape::new(
            w.dataset.spec.feat_dim,
            32,
            2,
            w.dataset.spec.num_classes,
            AggregatorKind::Mean,
        ),
        fanouts: FANOUTS.to_vec(),
        lr: 0.01,
        seed: 17,
        parallelism: buffalo_par::Parallelism::auto(),
    };
    // Probe the whole-batch footprint, then size a budget that forces a
    // handful of micro-batches so recovery has real work to do.
    let mut probe = BuffaloTrainer::new(config.clone(), w.clustering);
    let big = DeviceMemory::new(u64::MAX);
    let whole = probe
        .train_iteration(&w.dataset, &w.batch, &big, &cost)
        .expect("unlimited device");
    let budget = (whole.peak_mem_bytes * 3 / 5).max(1);

    let scenarios = [
        Scenario {
            name: "fault-free",
            rate: 0.0,
            spec: None,
        },
        Scenario {
            name: "transient-5pct",
            rate: 0.05,
            spec: Some("transient:p=0.05,seed=7"),
        },
        Scenario {
            name: "transient-10pct",
            rate: 0.10,
            spec: Some("transient:p=0.10,seed=7"),
        },
        Scenario {
            name: "transient-20pct",
            rate: 0.20,
            spec: Some("transient:p=0.20,seed=7"),
        },
        Scenario {
            name: "budget-shrink-40pct",
            rate: 0.0,
            spec: Some("shrink:at=4,factor=0.6,restore=12"),
        },
    ];

    let outcomes: Vec<Outcome> = scenarios
        .iter()
        .map(|sc| run_scenario(sc, iters, &config, &w, budget, &cost))
        .collect();
    let baseline = &outcomes[0];
    let baseline_s = baseline.wall_s;
    let baseline_losses = baseline.losses.clone();

    let mut t = Table::new([
        "scenario",
        "rate",
        "completed",
        "injected",
        "events",
        "overhead",
        "loss identical",
        "headroom",
    ]);
    for o in &outcomes {
        t.row([
            o.name.clone(),
            format!("{:.2}", o.rate),
            format!("{}/{}", o.completed, o.iterations),
            o.injected.to_string(),
            o.events.to_string(),
            format!("{:+.1}%", 100.0 * o.overhead(baseline_s)),
            (o.losses == baseline_losses).to_string(),
            format!("{:.3}", o.headroom),
        ]);
    }
    t.print();
    println!(
        "(budget {budget} B = 60% of whole-batch peak; transient scenarios \
         must be bitwise identical to fault-free)"
    );

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "    {{\"scenario\": \"{}\", \"fault_rate\": {:.2}, \"iterations\": {}, \
                 \"completed\": {}, \"completion_rate\": {:.4}, \"injected_faults\": {}, \
                 \"recovery_events\": {}, \"wall_s\": {:.6}, \"overhead_vs_baseline\": {:.4}, \
                 \"loss_bitwise_identical\": {}, \"headroom_multiplier\": {:.4}}}",
                o.name,
                o.rate,
                o.iterations,
                o.completed,
                o.completion_rate(),
                o.injected,
                o.events,
                o.wall_s,
                o.overhead(baseline_s),
                o.losses == baseline_losses,
                o.headroom
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"dataset\": \"cora\",\n  \"budget_bytes\": {budget},\n  \"iterations\": {iters},\n  \"max_retries\": 8,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    crate::output::write_artifact("BENCH_robustness.json", &json, write_bench);
}
