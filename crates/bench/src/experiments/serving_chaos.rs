//! Serving chaos experiment, written to `BENCH_serving_chaos.json`.
//!
//! Replays the `BENCH_serving.json` workload under injected faults and
//! overload and proves the resilience contract:
//!
//! 1. **Answers never move.** Per-request neighborhoods are sampled in
//!    isolation, so transient faults, re-splits, and whole-device
//!    failover may change *when* a request is answered but never *what*
//!    the answer is. Every completed request's class — and the folded
//!    `answer_digest` for full-completion scenarios — must be bitwise
//!    identical to the fault-free baseline.
//! 2. **Admitted work completes.** 100 % of admitted, non-shed requests
//!    finish despite the fault plan; the books balance exactly
//!    (`offered = completed + shed + missed`).
//! 3. **Latency pays, quantified.** The p50/p95/p99 deltas against the
//!    fault-free baseline are the measured price of retries, backoff,
//!    and failover penalties.
//!
//! Scenarios: seeded transient faults on one device, a 2-member pool
//! losing device 1 mid-run (fire point derived from the pool baseline's
//! allocation count, as in the failover experiment), and an overload run
//! with a bounded queue plus deadlines whose shed/missed ledgers must
//! account for every offered request.

use crate::context::load_workload_with;
use crate::output::{mem, secs, Table};
use buffalo_core::serve::{serve_trace, RequestTrace, ServeConfig, ServeReport};
use buffalo_core::train::{DevicePool, Engine, TrainConfig};
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{AggregatorKind, CostModel, Device, DeviceMemory, FaultPlan, FaultyDevice};
use std::collections::BTreeMap;

const WARMUP_ITERS: usize = 3;

fn light_config(w: &crate::context::Workload) -> TrainConfig {
    TrainConfig {
        shape: w.shape(32, AggregatorKind::Mean),
        fanouts: w.fanouts.clone(),
        lr: 0.01,
        seed: 17,
        parallelism: buffalo_par::Parallelism::auto(),
    }
}

struct Outcome {
    name: String,
    report: ServeReport,
    /// Every completed request's class equals the baseline's for the same
    /// trace index (the composition-independence claim, per request).
    answers_match: bool,
    /// Full-completion scenarios must also match the folded digest.
    digest_match: bool,
}

/// `true` when every request `r` completed and its class equals the
/// baseline class for the same trace index. Sheds/misses shrink the set
/// but never change a survivor's answer.
fn classes_match(baseline: &ServeReport, report: &ServeReport) -> bool {
    let base: BTreeMap<usize, (u32, u32)> = baseline
        .requests
        .iter()
        .map(|r| (r.index, (r.node, r.class)))
        .collect();
    report
        .requests
        .iter()
        .all(|r| base.get(&r.index) == Some(&(r.node, r.class)))
}

/// Runs the serving chaos suite; with `write_bench` it also rewrites
/// `BENCH_serving_chaos.json`.
pub fn serving_chaos(quick: bool, write_bench: bool) {
    let w = load_workload_with(DatasetName::Cora, 256, vec![5, 10], 42);
    let cost = CostModel::rtx6000();

    let mut engine = Engine::buffalo(light_config(&w), w.clustering);
    let warm_dev = DeviceMemory::with_gib(24.0);
    for _ in 0..WARMUP_ITERS {
        engine
            .train_iteration(&w.dataset, &w.batch, &warm_dev, &cost)
            .expect("warmup iteration");
    }

    let n = if quick { 128 } else { 512 };
    let trace =
        RequestTrace::poisson(n, 256.0, w.dataset.graph.num_nodes(), 7).expect("poisson trace");
    let cfg = ServeConfig::default();

    // Same budget derivation as the serving experiment: 60 % of the
    // roomy-device footprint, so the scheduler actively splits dispatches
    // while the chaos plans fire.
    let probe = DeviceMemory::with_gib(24.0);
    let wide =
        serve_trace(&engine, &w.dataset, &probe, &cost, &trace, &cfg).expect("roomy serve run");
    let budget = (wide.peak_mem_bytes * 3 / 5).max(1);

    let baseline = {
        let device = DeviceMemory::new(budget);
        serve_trace(&engine, &w.dataset, &device, &cost, &trace, &cfg).expect("baseline run")
    };
    assert_eq!(
        baseline.requests.len(),
        n,
        "fault-free baseline completes everything"
    );

    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut push = |name: &str, report: ServeReport| {
        let full = report.shed.is_empty() && report.deadline_missed.is_empty();
        outcomes.push(Outcome {
            name: name.to_string(),
            answers_match: classes_match(&baseline, &report),
            digest_match: full && report.answer_digest == baseline.answer_digest,
            report,
        });
    };

    // Scenario: seeded transient faults on a single device. Retries and
    // re-splits absorb them; answers must not move.
    {
        let plan = FaultPlan::parse("transient:p=0.2,seed=11").expect("transient plan");
        let device = FaultyDevice::new(DeviceMemory::new(budget), plan);
        let report =
            serve_trace(&engine, &w.dataset, &device, &cost, &trace, &cfg).expect("transient run");
        push("transient-p20", report);
    }

    // Scenario: a 2-member pool, fault-free — pooling alone must not move
    // answers — and its alloc counts seed the loss fire point below.
    let pool_base_allocs = {
        let pool = DevicePool::homogeneous(2, budget, &FaultPlan::none()).expect("fault-free pool");
        let report =
            serve_trace(&engine, &w.dataset, &pool, &cost, &trace, &cfg).expect("pool run");
        let allocs = pool.per_device_alloc_calls();
        push("2gpu-fault-free", report);
        allocs
    };

    // Scenario: the pool loses device 1 about a third of the way through
    // its fault-free allocation count; the survivors absorb its work.
    {
        let at = ((pool_base_allocs.get(1).copied().unwrap_or(1) as f64 * 0.34) as u64).max(1);
        let plan = FaultPlan::parse(&format!("lose:1,{at}")).expect("lose plan");
        let pool = DevicePool::homogeneous(2, budget, &plan).expect("lossy pool");
        let report =
            serve_trace(&engine, &w.dataset, &pool, &cost, &trace, &cfg).expect("lose run");
        assert_eq!(pool.dead(), vec![1], "device 1 must end the run dead");
        push("2gpu-lose-1", report);
    }

    // Scenario: overload. A queue bound plus deadlines shed work at the
    // admission edge; every survivor still answers exactly like the
    // baseline and the ledgers balance.
    {
        let device = DeviceMemory::new(budget);
        let overload = ServeConfig {
            max_batch: 8,
            queue_depth: 8,
            deadline: Some(0.04),
            ..cfg
        };
        let report = serve_trace(&engine, &w.dataset, &device, &cost, &trace, &overload)
            .expect("overload run");
        push("overload-shed", report);
    }

    let mut t = Table::new([
        "scenario",
        "completed",
        "shed",
        "missed",
        "retry/degr/split/fail",
        "answers match",
        "p50",
        "p95",
        "p99",
    ]);
    t.row([
        "baseline".to_string(),
        format!("{}/{}", baseline.requests.len(), baseline.num_admitted),
        "0".into(),
        "0".into(),
        "-".into(),
        "-".into(),
        secs(baseline.latency.p50),
        secs(baseline.latency.p95),
        secs(baseline.latency.p99),
    ]);
    for o in &outcomes {
        let r = &o.report;
        let rc = r.recovery_counts();
        t.row([
            o.name.clone(),
            format!("{}/{}", r.requests.len(), r.num_admitted),
            r.shed.len().to_string(),
            r.deadline_missed.len().to_string(),
            format!(
                "{}/{}/{}/{}",
                rc.retries, rc.degrades, rc.resplits, rc.failovers
            ),
            o.answers_match.to_string(),
            secs(r.latency.p50),
            secs(r.latency.p95),
            secs(r.latency.p99),
        ]);
    }
    t.print();
    println!(
        "(budget {} = 60% of roomy peak; `answers match` = every completed \
         request's class equals the fault-free baseline's; full-completion \
         scenarios also fold to the identical answer digest)",
        mem(budget)
    );

    let all_accounted = outcomes.iter().all(|o| {
        o.report.num_admitted
            == o.report.requests.len() + o.report.shed.len() + o.report.deadline_missed.len()
    });
    let all_match = outcomes.iter().all(|o| o.answers_match);
    println!(
        "exact accounting on every scenario: {all_accounted}; \
         answers bitwise identical to baseline: {all_match}"
    );

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let r = &o.report;
            let rc = r.recovery_counts();
            format!(
                "    {{\"scenario\": \"{}\", \"offered\": {}, \"completed\": {}, \
                 \"shed\": {}, \"deadline_missed\": {}, \"retries\": {}, \
                 \"degrades\": {}, \"resplits\": {}, \"failovers\": {}, \
                 \"answers_match_baseline\": {}, \"answer_digest_match\": {}, \
                 \"answer_digest\": \"{:016x}\", \"p50_s\": {:.6}, \"p95_s\": {:.6}, \
                 \"p99_s\": {:.6}, \"p50_delta_s\": {:.6}, \"p95_delta_s\": {:.6}, \
                 \"p99_delta_s\": {:.6}}}",
                o.name,
                r.num_admitted,
                r.requests.len(),
                r.shed.len(),
                r.deadline_missed.len(),
                rc.retries,
                rc.degrades,
                rc.resplits,
                rc.failovers,
                o.answers_match,
                o.digest_match,
                r.answer_digest,
                r.latency.p50,
                r.latency.p95,
                r.latency.p99,
                r.latency.p50 - baseline.latency.p50,
                r.latency.p95 - baseline.latency.p95,
                r.latency.p99 - baseline.latency.p99,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"dataset\": \"cora\",\n  \"requests\": {n},\n  \
         \"budget_bytes\": {budget},\n  \"baseline\": {{\"answer_digest\": \
         \"{:016x}\", \"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}}},\n  \
         \"exact_accounting\": {all_accounted},\n  \
         \"answers_match_baseline\": {all_match},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        baseline.answer_digest,
        baseline.latency.p50,
        baseline.latency.p95,
        baseline.latency.p99,
        rows.join(",\n")
    );
    crate::output::write_artifact("BENCH_serving_chaos.json", &json, write_bench);
}
