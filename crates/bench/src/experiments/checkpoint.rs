//! Checkpoint/resume experiment, written to `BENCH_checkpoint.json`.
//!
//! Three measurements on one small training workload:
//!
//! 1. **Overhead** — wall-clock cost of snapshotting every K iterations
//!    relative to the same run with checkpointing off, plus the snapshot
//!    size on disk. Snapshots must not perturb the math, so the two loss
//!    trails are also compared bitwise.
//! 2. **Resume fidelity** — a torn crash is injected mid-snapshot (the
//!    rename "lost", leaving garbage at the final path); the resumed run
//!    must reject the torn file by CRC, fall back through the ring, and
//!    produce a loss trail bitwise identical to the uninterrupted run.
//! 3. **Rollback rung** — a mid-run budget shrink with retries and
//!    re-splits disabled exhausts the in-iteration recovery ladder. The
//!    seed behavior (no checkpoints) aborts with `RecoveryExhausted`;
//!    with the rollback rung the run restores the last snapshot under a
//!    boosted headroom and completes every epoch.

use buffalo_core::checkpoint::CheckpointOptions;
use buffalo_core::train::{
    run_epochs_checkpointed, BuffaloTrainer, EpochConfig, RecoveryPolicy, TrainConfig, TrainRun,
};
use buffalo_core::TrainError;
use buffalo_graph::datasets::{self, Dataset, DatasetName};
use buffalo_memsim::{
    AggregatorKind, CostModel, CrashPoint, Device, DeviceMemory, FaultPlan, FaultyDevice, GnnShape,
};
use std::path::PathBuf;
use std::time::Instant;

const CLUSTERING: f64 = 0.24;

fn config(ds: &Dataset) -> TrainConfig {
    TrainConfig {
        shape: GnnShape::new(
            ds.spec.feat_dim,
            32,
            2,
            ds.spec.num_classes,
            AggregatorKind::Mean,
        ),
        fanouts: vec![5, 10],
        lr: 0.01,
        seed: 17,
        parallelism: buffalo_par::Parallelism::auto(),
    }
}

fn epoch_cfg(quick: bool) -> EpochConfig {
    EpochConfig {
        batch_size: 64,
        epochs: 2,
        train_nodes: if quick { 128 } else { 256 },
        eval_nodes: 128,
        seed: 5,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("buffalo-bench-ckpt-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_once(
    ds: &Dataset,
    cfg: &EpochConfig,
    device: &dyn Device,
    cost: &CostModel,
    ckpt: Option<&CheckpointOptions>,
    resume: bool,
    policy: Option<RecoveryPolicy>,
) -> (Result<TrainRun, TrainError>, f64) {
    let mut trainer = BuffaloTrainer::new(config(ds), CLUSTERING);
    if let Some(p) = policy {
        trainer = trainer.with_recovery(p);
    }
    let t = Instant::now();
    let run = run_epochs_checkpointed(&mut trainer, ds, device, cost, cfg, ckpt, resume);
    (run, t.elapsed().as_secs_f64())
}

fn trail_bits(run: &TrainRun) -> Vec<u32> {
    run.loss_trail.iter().map(|l| l.to_bits()).collect()
}

/// Runs the checkpoint/resume experiment; with `write_bench` it also
/// rewrites `BENCH_checkpoint.json`.
pub fn checkpoint(quick: bool, write_bench: bool) {
    let ds = datasets::load(DatasetName::Cora, 9);
    let cost = CostModel::rtx6000();
    let cfg = epoch_cfg(quick);
    let every = 2usize;

    // 1. Overhead: plain vs. checkpointed, same device budget, fresh
    // trainers, identical seeds.
    let plain_dev = DeviceMemory::with_gib(24.0);
    let (plain, plain_s) = run_once(&ds, &cfg, &plain_dev, &cost, None, false, None);
    let plain = plain.expect("plain run");
    let dir = tmpdir("overhead");
    let opts = CheckpointOptions {
        every,
        ..CheckpointOptions::new(&dir)
    };
    let ck_dev = DeviceMemory::with_gib(24.0);
    let (checkpointed, ck_s) = run_once(&ds, &cfg, &ck_dev, &cost, Some(&opts), false, None);
    let checkpointed = checkpointed.expect("checkpointed run");
    let snapshot_bytes = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    let overhead = if plain_s > 0.0 {
        ck_s / plain_s - 1.0
    } else {
        0.0
    };
    let no_perturb = trail_bits(&plain) == trail_bits(&checkpointed);

    // 2. Resume fidelity: tear snapshot save #4 at the final path, then
    // resume from the surviving ring and compare the full trail.
    let crash_dir = tmpdir("resume");
    let crash_opts = CheckpointOptions {
        every,
        crash: Some(CrashPoint {
            at_save: 4,
            after_bytes: None,
            torn: true,
        }),
        ..CheckpointOptions::new(&crash_dir)
    };
    let crash_dev = DeviceMemory::with_gib(24.0);
    let (crashed, _) = run_once(&ds, &cfg, &crash_dev, &cost, Some(&crash_opts), false, None);
    let crash_ok = matches!(
        crashed,
        Err(TrainError::Checkpoint(
            buffalo_core::checkpoint::CheckpointError::CrashInjected { .. }
        ))
    );
    let resume_opts = CheckpointOptions {
        every,
        ..CheckpointOptions::new(&crash_dir)
    };
    let resume_dev = DeviceMemory::with_gib(24.0);
    let (resumed, _) = run_once(
        &ds,
        &cfg,
        &resume_dev,
        &cost,
        Some(&resume_opts),
        true,
        None,
    );
    let resumed = resumed.expect("resumed run");
    let resumed_at = resumed.resumed_at.unwrap_or(0);
    let resume_identical = trail_bits(&resumed) == trail_bits(&plain);

    // 3. Rollback rung. Probe the whole-batch peak so a 40 % shrink bites
    // mid-iteration; disable the in-iteration rungs to force exhaustion.
    let peak = {
        let probe = DeviceMemory::with_gib(24.0);
        run_once(&ds, &cfg, &probe, &cost, None, false, None)
            .0
            .expect("probe run");
        probe.peak()
    };
    let policy = RecoveryPolicy {
        max_retries: 0,
        max_resplits: 0,
        ..RecoveryPolicy::default()
    };
    let plan = FaultPlan::parse("shrink:at=3,factor=0.6").expect("shrink spec");
    let seed_dev = FaultyDevice::new(DeviceMemory::new(peak), plan.clone());
    let (seed_run, _) = run_once(
        &ds,
        &cfg,
        &seed_dev,
        &cost,
        None,
        false,
        Some(policy.clone()),
    );
    let seed_aborted = matches!(seed_run, Err(TrainError::RecoveryExhausted { .. }));
    let rb_dir = tmpdir("rollback");
    let rb_opts = CheckpointOptions {
        every: 1,
        ..CheckpointOptions::new(&rb_dir)
    };
    let rb_dev = FaultyDevice::new(DeviceMemory::new(peak), plan);
    let (rb_run, _) = run_once(
        &ds,
        &cfg,
        &rb_dev,
        &cost,
        Some(&rb_opts),
        false,
        Some(policy),
    );
    let (rb_completed, rollbacks, rb_epochs) = match &rb_run {
        Ok(run) => (
            run.epochs.len() == cfg.epochs && run.loss_trail.iter().all(|l| l.is_finite()),
            run.rollbacks,
            run.epochs.len(),
        ),
        Err(_) => (false, 0, 0),
    };

    let mut t = crate::output::Table::new(["measurement", "value"]);
    t.row([
        "snapshot overhead".to_string(),
        format!(
            "{:+.1}% ({} snapshots, {} B each, every {every})",
            100.0 * overhead,
            checkpointed.snapshots_written,
            snapshot_bytes
        ),
    ]);
    t.row([
        "snapshots perturb math".to_string(),
        (!no_perturb).to_string(),
    ]);
    t.row(["torn crash raised".to_string(), crash_ok.to_string()]);
    t.row([
        "resume trail identical".to_string(),
        format!("{resume_identical} (resumed at iter {resumed_at})"),
    ]);
    t.row([
        "seed aborts on exhaustion".to_string(),
        seed_aborted.to_string(),
    ]);
    t.row([
        "rollback completes run".to_string(),
        format!(
            "{rb_completed} ({rollbacks} rollbacks, {rb_epochs}/{} epochs)",
            cfg.epochs
        ),
    ]);
    t.print();

    let json = format!(
        "{{\n  \"dataset\": \"cora\",\n  \"epochs\": {},\n  \"iterations\": {},\n  \"checkpoint_every\": {every},\n  \"overhead\": {{\"plain_wall_s\": {plain_s:.6}, \"checkpointed_wall_s\": {ck_s:.6}, \"overhead_vs_plain\": {overhead:.4}, \"snapshots_written\": {}, \"snapshot_bytes\": {snapshot_bytes}, \"trail_bitwise_identical\": {no_perturb}}},\n  \"resume\": {{\"crash_at_save\": 4, \"torn\": true, \"crash_error_raised\": {crash_ok}, \"resumed_at_iteration\": {resumed_at}, \"trail_bitwise_identical\": {resume_identical}}},\n  \"rollback\": {{\"budget_bytes\": {peak}, \"shrink\": \"at=3,factor=0.6\", \"seed_aborted\": {seed_aborted}, \"rollback_completed\": {rb_completed}, \"rollbacks\": {rollbacks}, \"epochs_completed\": {rb_epochs}}}\n}}\n",
        cfg.epochs,
        plain.loss_trail.len(),
        checkpointed.snapshots_written,
    );
    crate::output::write_artifact("BENCH_checkpoint.json", &json, write_bench);

    for d in [&dir, &crash_dir, &rb_dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}
