//! Figure 17 (convergence curves, batch vs micro-batch) and Table IV
//! (training loss, DGL vs Buffalo, with OOM cells).

use crate::context::{gib, load_workload, load_workload_with, RTX6000_GIB};
use crate::output::Table;
use buffalo_core::sim::{simulate_iteration, SimContext, Strategy};
use buffalo_core::train::{BuffaloTrainer, FullBatchTrainer, TrainConfig};
use buffalo_graph::datasets::DatasetName;
use buffalo_graph::NodeId;
use buffalo_memsim::{AggregatorKind, CostModel, DeviceMemory, GnnShape};
use buffalo_sampling::BatchSampler;

/// Reduced real-training fanouts (the full math path runs on the CPU).
const TRAIN_FANOUTS: [usize; 2] = [5, 10];

fn train_config(feat_dim: usize, num_classes: usize, aggregator: AggregatorKind) -> TrainConfig {
    TrainConfig {
        shape: GnnShape::new(feat_dim, 32, 2, num_classes, aggregator),
        fanouts: TRAIN_FANOUTS.to_vec(),
        lr: 0.01,
        seed: 17,
        parallelism: buffalo_par::Parallelism::auto(),
    }
}

/// Figure 17: convergence of whole-batch vs Buffalo micro-batch training
/// on OGBN-arxiv for three batch sizes — the curves must coincide.
pub fn fig17(quick: bool) {
    let w = load_workload_with(DatasetName::OgbnArxiv, 64, TRAIN_FANOUTS.to_vec(), 5);
    let cost = CostModel::rtx6000();
    let iters = if quick { 8 } else { 20 };
    let sizes: &[usize] = if quick {
        &[128, 256]
    } else {
        &[256, 512, 1024]
    };
    for &bs in sizes {
        let seeds: Vec<NodeId> = (0..bs as NodeId).collect();
        let batch = BatchSampler::new(TRAIN_FANOUTS.to_vec()).sample(&w.dataset.graph, &seeds, 11);
        let config = train_config(
            w.dataset.spec.feat_dim,
            w.dataset.spec.num_classes,
            AggregatorKind::Mean,
        );
        // Size a budget that forces Buffalo into several micro-batches,
        // probing the whole-batch footprint with a throwaway trainer.
        let mut probe = FullBatchTrainer::new(config.clone());
        let big = DeviceMemory::new(u64::MAX);
        let whole = probe
            .train_iteration(&w.dataset, &batch, &big, &cost)
            .expect("unlimited device");
        let budget = DeviceMemory::new(whole.peak_mem_bytes * 3 / 5);
        // Fresh trainers so both start from identical weights.
        let config = train_config(
            w.dataset.spec.feat_dim,
            w.dataset.spec.num_classes,
            AggregatorKind::Mean,
        );
        let mut full = FullBatchTrainer::new(config.clone());
        let mut buffalo = BuffaloTrainer::new(config, w.clustering);
        let mut t = Table::new([
            "iteration",
            "batch loss",
            "micro-batch loss",
            "micro-batches",
        ]);
        let mut max_rel_diff = 0.0f64;
        for i in 0..iters {
            let sf = full
                .train_iteration(&w.dataset, &batch, &big, &cost)
                .expect("full batch fits unlimited device");
            let sb = buffalo
                .train_iteration(&w.dataset, &batch, &budget, &cost)
                .expect("buffalo fits budget");
            max_rel_diff =
                max_rel_diff.max((sf.loss - sb.loss).abs() as f64 / sf.loss.abs().max(1e-6) as f64);
            t.row([
                i.to_string(),
                format!("{:.4}", sf.loss),
                format!("{:.4}", sb.loss),
                sb.num_micro_batches.to_string(),
            ]);
        }
        println!("batch size {bs}:");
        t.print();
        println!(
            "max relative loss divergence: {:.2}%\n",
            100.0 * max_rel_diff
        );
    }
    println!("(paper: curves closely aligned — micro-batch training does not affect convergence)");
}

/// Table IV: training loss of DGL (whole batch) vs Buffalo (micro-batch)
/// per dataset and model; OOM cells where the whole batch exceeds 24 GB.
///
/// The OOM column is decided at the paper's scale configuration (hidden
/// 512 LSTM for SAGE, 8-head GAT accounted as hidden 2048); the loss
/// itself is measured with a reduced CPU-trainable configuration, since
/// the claim under test is *equality* of the DGL and Buffalo losses.
pub fn tab4(quick: bool) {
    let cost = CostModel::rtx6000();
    let iters = if quick { 6 } else { 12 };
    let mut t = Table::new([
        "dataset",
        "model",
        "DGL loss",
        "Buffalo loss",
        "micro-batches",
    ]);
    for name in DatasetName::ALL {
        let w = load_workload(name, quick);
        for (model_name, oom_shape, train_agg) in [
            (
                "SAGE",
                w.shape(512, AggregatorKind::Lstm),
                AggregatorKind::Mean,
            ),
            (
                "GAT",
                w.shape(2048, AggregatorKind::Attention),
                AggregatorKind::Attention,
            ),
        ] {
            if quick && name == DatasetName::OgbnPapers && model_name == "GAT" {
                continue;
            }
            // OOM decision at paper-scale config.
            let ctx = SimContext {
                shape: &oom_shape,
                fanouts: &w.fanouts,
                clustering: w.clustering,
                original: &w.dataset.graph,
            };
            let unlimited = DeviceMemory::new(u64::MAX);
            let whole = simulate_iteration(&w.batch, ctx, Strategy::Full, &unlimited, &cost)
                .expect("unlimited device");
            let dgl_oom = gib(whole.peak_mem_bytes) > RTX6000_GIB;
            // Loss measurement at reduced scale.
            let bs = if quick { 192 } else { 384 };
            let seeds: Vec<NodeId> = (0..bs.min(w.dataset.graph.num_nodes()) as NodeId).collect();
            let batch =
                BatchSampler::new(TRAIN_FANOUTS.to_vec()).sample(&w.dataset.graph, &seeds, 23);
            let config = train_config(
                w.dataset.spec.feat_dim,
                w.dataset.spec.num_classes,
                train_agg,
            );
            let big = DeviceMemory::new(u64::MAX);
            let mut probe = FullBatchTrainer::new(config.clone());
            let whole_small = probe
                .train_iteration(&w.dataset, &batch, &big, &cost)
                .expect("unlimited device");
            let budget = DeviceMemory::new(whole_small.peak_mem_bytes * 3 / 5);
            let mut full = FullBatchTrainer::new(config.clone());
            let mut buffalo = BuffaloTrainer::new(config, w.clustering);
            let (mut dgl_losses, mut buf_losses, mut micro) = (Vec::new(), Vec::new(), 0);
            for _ in 0..iters {
                let sf = full
                    .train_iteration(&w.dataset, &batch, &big, &cost)
                    .expect("probe fits");
                dgl_losses.push(sf.loss);
                let sb = buffalo
                    .train_iteration(&w.dataset, &batch, &budget, &cost)
                    .expect("buffalo fits budget");
                buf_losses.push(sb.loss);
                micro = sb.num_micro_batches;
            }
            let fmt = |v: &[f32]| {
                let tail = &v[v.len().saturating_sub(3)..];
                let mean = tail.iter().sum::<f32>() / tail.len() as f32;
                let var = tail.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / tail.len() as f32;
                format!("{mean:.4} ± {:.4}", var.sqrt())
            };
            t.row([
                name.to_string(),
                model_name.into(),
                if dgl_oom {
                    "OOM".into()
                } else {
                    fmt(&dgl_losses)
                },
                fmt(&buf_losses),
                micro.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "(paper: Buffalo loss matches DGL wherever DGL fits; Buffalo also trains every OOM cell)"
    );
}
