//! One module per paper figure/table. Every experiment prints the rows or
//! series of the corresponding figure; `EXPERIMENTS.md` records how each
//! output compares with the paper.

pub mod ablation;
pub mod checkpoint;
pub mod convergence;
pub mod distributions;
pub mod failover;
pub mod kernels;
pub mod memwall;
pub mod multigpu;
pub mod pareto;
pub mod robustness;
pub mod serving;
pub mod serving_chaos;
pub mod tables;
pub mod tiered;
pub mod timing;

/// All experiment ids accepted by the `figures` binary.
pub const ALL_IDS: &[&str] = &[
    "tab2",
    "fig1",
    "fig4",
    "fig2",
    "fig13",
    "fig5",
    "fig10",
    "fig11",
    "fig12",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "tab3",
    "tab4",
    "multigpu",
    "ablate-grouping",
    "ablate-estimator",
    "ablate-layer",
    "ablate-tiered",
    "ablate-pipeline",
    "pipeline-train",
    "kernels",
    "robustness",
    "checkpoint",
    "serving",
    "serving-chaos",
    "failover",
];

/// Runs one experiment by id. `write_bench` gates the `BENCH_*.json`
/// artifacts some experiments produce (see
/// [`write_artifact`](crate::output::write_artifact)).
///
/// # Errors
///
/// Returns a message for unknown ids.
pub fn run(id: &str, quick: bool, write_bench: bool) -> Result<(), String> {
    println!("=== {id} {} ===", if quick { "(quick)" } else { "" });
    match id {
        "tab2" => tables::tab2(quick),
        "fig1" => distributions::fig1(quick),
        "fig4" => distributions::fig4(quick),
        "fig2" => memwall::fig2(quick),
        "fig13" => memwall::fig13(quick),
        "fig5" => timing::fig5(quick),
        "fig10" => pareto::fig10(quick),
        "fig11" => timing::fig11(quick),
        "fig12" => timing::fig12(quick),
        "fig14" => pareto::fig14(quick),
        "fig15" => pareto::fig15(quick),
        "fig16" => pareto::fig16(quick),
        "fig17" => convergence::fig17(quick),
        "tab3" => tables::tab3(quick),
        "tab4" => convergence::tab4(quick),
        "multigpu" => multigpu::multigpu(quick),
        "ablate-grouping" => ablation::grouping(quick),
        "ablate-estimator" => ablation::estimator(quick),
        "ablate-layer" => ablation::layer(quick),
        "ablate-tiered" => tiered::tiered(quick),
        "ablate-pipeline" => ablation::pipeline(quick),
        "pipeline-train" => timing::pipeline_train(quick),
        "kernels" => kernels::kernels(quick, write_bench),
        "robustness" => robustness::robustness(quick, write_bench),
        "checkpoint" => checkpoint::checkpoint(quick, write_bench),
        "serving" => serving::serving(quick, write_bench),
        "serving-chaos" => serving_chaos::serving_chaos(quick, write_bench),
        "failover" => failover::failover(quick, write_bench),
        other => return Err(format!("unknown experiment id `{other}`")),
    }
    println!();
    Ok(())
}
