//! Figure 2 (the memory wall: whole-batch training OOMs as the model
//! scales) and Figure 13 (Buffalo breaks the wall with micro-batches).

use crate::context::{gib, load_workload, load_workload_with, Workload, RTX6000_GIB};
use crate::output::{mem, Table};
use buffalo_core::sim::{simulate_iteration, SimContext, Strategy};
use buffalo_core::TrainError;
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{AggregatorKind, CostModel, DeviceMemory, GnnShape};

/// One Figure 2/13 configuration: label + shape + fanouts.
struct Config {
    label: String,
    shape: GnnShape,
    fanouts: Vec<usize>,
}

/// The paper's Figure 2 grid: varying (a) aggregator, (b) aggregation
/// depth, (c) hidden size, (d) fanout.
fn configs(w: &Workload) -> Vec<Config> {
    let mut cs = Vec::new();
    for agg in [
        AggregatorKind::Mean,
        AggregatorKind::MaxPool,
        AggregatorKind::Lstm,
    ] {
        cs.push(Config {
            label: format!("(a) aggregator={agg}"),
            shape: w.shape(512, agg),
            fanouts: vec![10, 25],
        });
    }
    for depth in [2usize, 3, 4] {
        let mut fanouts = vec![10];
        fanouts.extend(std::iter::repeat_n(10, depth.saturating_sub(2)));
        fanouts.push(25);
        let mut shape = w.shape(256, AggregatorKind::Lstm);
        shape.num_layers = depth;
        cs.push(Config {
            label: format!("(b) depth={depth}"),
            shape,
            fanouts,
        });
    }
    for hidden in [128usize, 256, 512, 1024] {
        cs.push(Config {
            label: format!("(c) hidden={hidden}"),
            shape: w.shape(hidden, AggregatorKind::Lstm),
            fanouts: vec![10, 25],
        });
    }
    for fanout in [10usize, 15, 20] {
        cs.push(Config {
            label: format!("(d) fanout={fanout},25"),
            shape: w.shape(512, AggregatorKind::Lstm),
            fanouts: vec![fanout, 25],
        });
    }
    cs
}

fn run_grid(quick: bool, buffalo: bool) {
    let cost = CostModel::rtx6000();
    for name in [DatasetName::OgbnArxiv, DatasetName::OgbnProducts] {
        let w = load_workload(name, quick);
        println!("--- {} (budget {RTX6000_GIB} GB) ---", name);
        let mut t = Table::new(if buffalo {
            ["config", "peak memory", "micro-batches", "status"]
        } else {
            ["config", "whole-batch memory", "vs 24GB", "status"]
        });
        for cfg in configs(&w) {
            // Re-sample when the fanouts differ from the workload default.
            let batch;
            let batch_ref = if cfg.fanouts == w.fanouts {
                &w.batch
            } else {
                let alt = load_workload_with(name, w.batch.num_seeds, cfg.fanouts.clone(), 42);
                batch = alt.batch;
                &batch
            };
            let ctx = SimContext {
                shape: &cfg.shape,
                fanouts: &cfg.fanouts,
                clustering: w.clustering,
                original: &w.dataset.graph,
            };
            if buffalo {
                let device = DeviceMemory::with_gib(RTX6000_GIB);
                match simulate_iteration(batch_ref, ctx, Strategy::Buffalo, &device, &cost) {
                    Ok(rep) => {
                        t.row([
                            cfg.label,
                            mem(rep.peak_mem_bytes),
                            rep.num_micro_batches.to_string(),
                            "ok".into(),
                        ]);
                    }
                    Err(e) => {
                        t.row([cfg.label, "-".into(), "-".into(), format!("failed: {e}")]);
                    }
                }
            } else {
                // Measure the whole-batch footprint against an unlimited
                // device, then compare with the real budget.
                let unlimited = DeviceMemory::new(u64::MAX);
                match simulate_iteration(batch_ref, ctx, Strategy::Full, &unlimited, &cost) {
                    Ok(rep) => {
                        let over = gib(rep.peak_mem_bytes) > RTX6000_GIB;
                        t.row([
                            cfg.label,
                            mem(rep.peak_mem_bytes),
                            format!("{:.1}x", gib(rep.peak_mem_bytes) / RTX6000_GIB),
                            if over {
                                "OOM".into()
                            } else {
                                "fits".to_string()
                            },
                        ]);
                    }
                    Err(TrainError::Oom(e)) => {
                        t.row([
                            cfg.label,
                            format!(">{}", mem(e.requested)),
                            "-".into(),
                            "OOM".into(),
                        ]);
                    }
                    Err(e) => {
                        t.row([cfg.label, "-".into(), "-".into(), format!("failed: {e}")]);
                    }
                }
            }
        }
        t.print();
    }
}

/// Figure 2: whole-batch GraphSAGE memory across aggregators, depths,
/// hidden sizes, and fanouts — the memory wall.
pub fn fig2(quick: bool) {
    run_grid(quick, false);
}

/// Figure 13: the same grid trained with Buffalo under the 24 GB budget —
/// every OOM cell becomes a finite micro-batch count.
pub fn fig13(quick: bool) {
    run_grid(quick, true);
}
