//! Figure 1 (degree-frequency distribution) and Figure 4 (bucket-volume
//! distributions and the bucket explosion problem).

use crate::context::load_workload;
use crate::output::{mem, Table};
use buffalo_blocks::{generate_blocks_fast, GenerateOptions};
use buffalo_bucketing::degree_bucketing;
use buffalo_graph::datasets::DatasetName;
use buffalo_graph::stats;
use buffalo_memsim::{measure, AggregatorKind};
use buffalo_partition::BettyPartitioner;

/// Figure 1: degree frequency of all nodes in OGBN-products, showing the
/// power-law long tail that causes bucket explosion. Printed log-binned.
pub fn fig1(quick: bool) {
    let w = load_workload(DatasetName::OgbnProducts, quick);
    let hist = stats::degree_frequency(&w.dataset.graph);
    let mut t = Table::new(["degree range", "#nodes", "share %"]);
    let total: usize = hist.iter().sum();
    let mut lo = 1usize;
    while lo < hist.len() {
        let hi = (lo * 2).min(hist.len());
        let count: usize = hist[lo..hi].iter().sum();
        if count > 0 {
            t.row([
                format!("{}-{}", lo, hi - 1),
                count.to_string(),
                format!("{:.3}", 100.0 * count as f64 / total as f64),
            ]);
        }
        lo = hi;
    }
    t.print();
    let fit = stats::fit_power_law(&w.dataset.graph, 5).expect("tail large enough");
    println!(
        "power-law fit: alpha={:.2}, max/avg degree ratio={:.0} (long tail confirmed)",
        fit.alpha, fit.max_to_avg_ratio
    );
}

/// Figure 4: bucket-volume distribution for (a) Cora — balanced, (b)
/// OGBN-arxiv with F=10 — exploded, (c) OGBN-arxiv after Betty 2-way
/// batch-level partitioning — still exploded in every micro-batch, with
/// imbalanced micro-batch memory.
pub fn fig4(quick: bool) {
    let cutoff = 10;
    // (a) Cora: small batch, balanced buckets.
    let cora = load_workload(DatasetName::Cora, quick);
    println!("(a) Cora bucket volumes (F={cutoff}):");
    print_volumes(&cora.batch.graph, cora.batch.num_seeds, cutoff);

    // (b) OGBN-arxiv: bucket explosion.
    let arxiv = load_workload(DatasetName::OgbnArxiv, quick);
    println!("\n(b) OGBN-arxiv bucket volumes (F={cutoff}):");
    let volumes = print_volumes(&arxiv.batch.graph, arxiv.batch.num_seeds, cutoff);
    let last = *volumes.last().unwrap() as f64;
    let rest_mean = volumes[..volumes.len() - 1].iter().sum::<usize>() as f64
        / (volumes.len() - 1).max(1) as f64;
    println!(
        "explosion: last bucket {}x the mean of the others",
        (last / rest_mean.max(1.0)).round()
    );

    // (c) Betty 2-way micro-batches still explode and are memory-imbalanced.
    println!("\n(c) OGBN-arxiv after Betty batch-level partitioning (2 micro-batches):");
    let part = BettyPartitioner::default()
        .partition(&arxiv.batch.graph, arxiv.batch.num_seeds, 2)
        .expect("arxiv batch has no zero in-degree seeds");
    let shape = arxiv.shape(128, AggregatorKind::Lstm);
    let mut mems = Vec::new();
    for (i, group) in part.groups.iter().enumerate() {
        let micro = arxiv.batch.restrict_to_seeds(group);
        println!("micro-batch {i} bucket volumes:");
        print_volumes(&micro.graph, micro.num_seeds, cutoff);
        let blocks = generate_blocks_fast(
            &micro.graph,
            micro.num_seeds,
            shape.num_layers,
            GenerateOptions::default(),
        );
        mems.push(measure::training_memory(&blocks, &shape).total());
    }
    let mut t = Table::new(["micro-batch", "memory"]);
    for (i, m) in mems.iter().enumerate() {
        t.row([i.to_string(), mem(*m)]);
    }
    t.print();
    let hi = *mems.iter().max().unwrap() as f64;
    let lo = *mems.iter().min().unwrap() as f64;
    println!(
        "memory imbalance between Betty micro-batches: {:.0}%",
        100.0 * (hi - lo) / lo
    );
}

fn print_volumes(batch: &buffalo_graph::CsrGraph, num_seeds: usize, cutoff: usize) -> Vec<usize> {
    let buckets = degree_bucketing(batch, num_seeds, cutoff);
    let mut t = Table::new(["degree", "volume"]);
    let mut volumes = Vec::new();
    for b in &buckets {
        t.row([b.degree.to_string(), b.volume().to_string()]);
        volumes.push(b.volume());
    }
    t.print();
    volumes
}
