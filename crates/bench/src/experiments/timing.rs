//! Figure 5 (METIS-based per-iteration partitioning dominates), Figure 11
//! (end-to-end time breakdown, Betty vs Buffalo), Figure 12 (block
//! generation time, Buffalo vs Betty), and the staged-pipeline experiment
//! (`pipeline-train`: real trainer, serial vs overlapped staging).

use crate::context::{load_workload, load_workload_with, RTX6000_GIB};
use crate::output::{secs, Table};
use buffalo_blocks::{generate_blocks_checked, generate_blocks_fast, GenerateOptions};
use buffalo_core::sim::{simulate_iteration, SimContext, Strategy};
use buffalo_core::train::{BuffaloTrainer, PipelineConfig, TrainConfig};
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{measure, AggregatorKind, CostModel, DeviceMemory, StageTimings};
use buffalo_partition::{metis_kway, range_partition, MetisOptions};
use std::time::Instant;

/// Figure 5: executing METIS-based graph partitioning inside each training
/// iteration costs far more than the GPU compute it schedules.
pub fn fig5(quick: bool) {
    let cost = CostModel::rtx6000();
    let mut t = Table::new([
        "dataset",
        "METIS partition",
        "block generation",
        "GPU compute",
    ]);
    for name in [DatasetName::OgbnArxiv, DatasetName::OgbnProducts] {
        let w = load_workload(name, quick);
        // The paper's §IV-D configuration: LSTM aggregator, hidden 128.
        let shape = w.shape(128, buffalo_memsim::AggregatorKind::Lstm);
        // Graph-level partitioning of the whole sampled subgraph, as the
        // METIS-based systems do per iteration.
        let t0 = Instant::now();
        let parts = metis_kway(&w.batch.graph, 8, MetisOptions::default());
        let metis_time = t0.elapsed().as_secs_f64();
        std::hint::black_box(&parts);
        let t1 = Instant::now();
        let blocks = generate_blocks_fast(
            &w.batch.graph,
            w.batch.num_seeds,
            shape.num_layers,
            GenerateOptions::default(),
        );
        let block_time = t1.elapsed().as_secs_f64();
        let compute = cost.training_seconds(&blocks, &shape);
        t.row([
            name.to_string(),
            secs(metis_time),
            secs(block_time),
            secs(compute),
        ]);
    }
    t.print();
    println!("(partitioning per iteration dwarfs compute — the motivation for online bucket-level scheduling)");
}

/// Per-dataset micro-batch counts used for the breakdown, mirroring the
/// paper's Figure 14 settings (arxiv 4, products 12, papers 8).
fn breakdown_k(name: DatasetName) -> usize {
    match name {
        DatasetName::Cora | DatasetName::Pubmed => 2,
        DatasetName::Reddit => 4,
        DatasetName::OgbnArxiv => 4,
        DatasetName::OgbnProducts => 12,
        DatasetName::OgbnPapers => 8,
    }
}

/// Figure 11: end-to-end iteration time broken into the seven components,
/// Betty vs Buffalo, across all datasets. Betty has no data for
/// OGBN-papers (zero in-degree nodes, §V-B).
pub fn fig11(quick: bool) {
    let cost = CostModel::rtx6000();
    let mut t = Table::new([
        "dataset",
        "system",
        "sched",
        "REG",
        "METIS",
        "conn check",
        "block",
        "load",
        "compute",
        "total",
    ]);
    let mut reductions = Vec::new();
    for name in DatasetName::ALL {
        let w = load_workload(name, quick);
        // The paper's §IV-D configuration (LSTM, hidden 128) — compute
        // stays a small share of the iteration, as in Figure 11 where
        // data preparation dominates.
        let shape = w.shape(128, buffalo_memsim::AggregatorKind::Lstm);
        let ctx = SimContext {
            shape: &shape,
            fanouts: &w.fanouts,
            clustering: w.clustering,
            original: &w.dataset.graph,
        };
        let target_k = breakdown_k(name);
        // Find the whole-batch footprint, then give Buffalo a budget that
        // forces roughly the paper's micro-batch count; Betty then runs at
        // the K Buffalo actually produced so both systems do the same
        // amount of training work.
        let unlimited = DeviceMemory::new(u64::MAX);
        let whole = simulate_iteration(&w.batch, ctx, Strategy::Full, &unlimited, &cost)
            .expect("unlimited device cannot OOM");
        // A 1.3x slack keeps closure saturation from inflating K far past
        // the paper's micro-batch count.
        let budget = DeviceMemory::new((whole.peak_mem_bytes / target_k as u64).max(1) * 13 / 10);
        let buffalo_rep = simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &budget, &cost);
        let k = buffalo_rep
            .as_ref()
            .map(|r| r.num_micro_batches)
            .unwrap_or(target_k);
        let mut totals = [0.0f64; 2];
        for (si, strategy) in [Strategy::Buffalo, Strategy::Betty { k }]
            .into_iter()
            .enumerate()
        {
            let device = if matches!(strategy, Strategy::Buffalo) {
                &budget
            } else {
                &unlimited
            };
            let result = if matches!(strategy, Strategy::Buffalo) {
                buffalo_rep.clone()
            } else {
                simulate_iteration(&w.batch, ctx, strategy, device, &cost)
            };
            match result {
                Ok(rep) => {
                    let p = rep.phases;
                    totals[si] = p.total();
                    t.row([
                        name.to_string(),
                        strategy.name().into(),
                        secs(p.scheduling),
                        secs(p.reg_construction),
                        secs(p.metis_partition),
                        secs(p.connection_check),
                        secs(p.block_construction),
                        secs(p.data_loading),
                        secs(p.gpu_compute),
                        secs(p.total()),
                    ]);
                }
                Err(e) => {
                    t.row([
                        name.to_string(),
                        strategy.name().into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        format!("no data ({e})"),
                    ]);
                }
            }
        }
        if totals[0] > 0.0 && totals[1] > 0.0 {
            reductions.push(100.0 * (totals[1] - totals[0]) / totals[1]);
        }
    }
    t.print();
    if !reductions.is_empty() {
        println!(
            "Buffalo end-to-end reduction vs Betty: {:.1}% average (paper: 70.9%)",
            reductions.iter().sum::<f64>() / reductions.len() as f64
        );
    }
}

/// Figure 12: block generation time, Buffalo's CSR fast path vs Betty's
/// repeated connection checks, at 4/8/16 micro-batches.
pub fn fig12(quick: bool) {
    let mut t = Table::new([
        "dataset",
        "micro-batches",
        "Betty block gen",
        "Buffalo block gen",
        "speedup",
    ]);
    for name in [DatasetName::OgbnArxiv, DatasetName::OgbnProducts] {
        let w = load_workload(name, quick);
        let depth = w.fanouts.len();
        for k in [4usize, 8, 16] {
            // Hold the partition fixed so only generation differs.
            let groups = range_partition(w.batch.num_seeds, k);
            let micros: Vec<_> = groups
                .iter()
                .filter(|g| !g.is_empty())
                .map(|g| w.batch.restrict_to_seeds(g))
                .collect();
            let t0 = Instant::now();
            for m in &micros {
                std::hint::black_box(generate_blocks_checked(
                    &m.graph,
                    &m.global_ids,
                    &w.dataset.graph,
                    m.num_seeds,
                    depth,
                ));
            }
            let betty = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            for m in &micros {
                std::hint::black_box(generate_blocks_fast(
                    &m.graph,
                    m.num_seeds,
                    depth,
                    GenerateOptions::default(),
                ));
            }
            let buffalo = t1.elapsed().as_secs_f64();
            t.row([
                name.to_string(),
                k.to_string(),
                secs(betty),
                secs(buffalo),
                format!("{:.1}x", betty / buffalo.max(1e-12)),
            ]);
        }
    }
    t.print();
    println!("(paper: Buffalo up to 8x faster block generation; 10x claimed in §I)");
    let _ = RTX6000_GIB;
}

/// Staged-pipeline experiment: the real `BuffaloTrainer` (dense math, not
/// the analytic simulator) with serial vs overlapped staging on a budget
/// that forces multiple micro-batches. Reports the serial stage sum, the
/// overlapped makespan, and checks the two runs' losses bit-for-bit.
pub fn pipeline_train(quick: bool) {
    let cost = CostModel::rtx6000();
    let iters = if quick { 3 } else { 5 };
    let names: &[DatasetName] = if quick {
        &[DatasetName::Cora]
    } else {
        &[DatasetName::Cora, DatasetName::Pubmed]
    };
    let mut t = Table::new(["dataset", "K", "serial", "overlapped", "speedup", "losses"]);
    for &name in names {
        // Real dense math on the CPU: keep the batch and shape light.
        let w = load_workload_with(name, if quick { 256 } else { 512 }, vec![5, 10], 42);
        let shape = w.shape(32, AggregatorKind::Mean);
        let blocks = generate_blocks_fast(
            &w.batch.graph,
            w.batch.num_seeds,
            shape.num_layers,
            GenerateOptions::default(),
        );
        // Three quarters of the whole-batch footprint forces a split.
        let budget = measure::training_memory(&blocks, &shape).total() * 3 / 4;
        let config = TrainConfig {
            shape: shape.clone(),
            fanouts: w.fanouts.clone(),
            lr: 0.01,
            seed: 9,
            parallelism: buffalo_par::Parallelism::auto(),
        };
        let run = |pipeline: PipelineConfig| {
            let device = DeviceMemory::new(budget);
            let mut trainer =
                BuffaloTrainer::new(config.clone(), w.clustering).with_pipeline(pipeline);
            let mut timings = StageTimings::default();
            let mut losses = Vec::new();
            let mut k = 0usize;
            for _ in 0..iters {
                let s = trainer
                    .train_iteration(&w.dataset, &w.batch, &device, &cost)
                    .expect("training iteration");
                timings.accumulate(&s.timings);
                losses.push(s.loss.to_bits());
                k = s.num_micro_batches;
            }
            (k, timings, losses)
        };
        let (k, serial, serial_losses) = run(PipelineConfig::serial());
        let (_, overlapped, overlapped_losses) = run(PipelineConfig::overlapped());
        t.row([
            name.to_string(),
            k.to_string(),
            secs(serial.serial_sum()),
            secs(overlapped.overlapped_makespan),
            format!("{:.2}x", overlapped.speedup()),
            if serial_losses == overlapped_losses {
                "bit-identical".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    t.print();
    println!("(Prepare of micro-batch i+1 runs on a worker thread while micro-batch i");
    println!("executes; in-order execution keeps gradient accumulation — and therefore");
    println!("the losses — bit-identical to serial staging)");
}
