//! §V-G: data-parallel multi-GPU — a deliberately modest result. Training
//! is 9–12 % of the iteration, micro-batch generation stays on the CPU,
//! so a second GPU shaves only 3–5 % while all-reduce adds ~1 %.

use crate::context::load_workload;
use crate::output::{secs, Table};
use buffalo_core::multi_gpu::simulate_data_parallel;
use buffalo_core::sim::SimContext;
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{AggregatorKind, CostModel};

/// §V-G: repeat the Figure 15 setting on one vs two simulated A100s
/// connected by PCIe (25 GB/s).
pub fn multigpu(quick: bool) {
    let w = load_workload(DatasetName::OgbnProducts, quick);
    let shape = w.shape(1024, AggregatorKind::Lstm);
    let ctx = SimContext {
        shape: &shape,
        fanouts: &w.fanouts,
        clustering: w.clustering,
        original: &w.dataset.graph,
    };
    let cost = CostModel::a100_80gb();
    let mut t = Table::new([
        "budget/GPU",
        "GPUs",
        "micro-batches",
        "CPU prep",
        "device (max)",
        "all-reduce",
        "iteration",
        "vs 1 GPU",
    ]);
    for budget_gib in [16.0f64, 24.0] {
        let budget = (budget_gib * (1u64 << 30) as f64) as u64;
        let one = match simulate_data_parallel(&w.batch, ctx, budget, 1, 25e9, &cost) {
            Ok(r) => r,
            Err(e) => {
                t.row([
                    format!("{budget_gib:.0}GB"),
                    "1".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {e}"),
                ]);
                continue;
            }
        };
        for gpus in [1usize, 2] {
            let rep = simulate_data_parallel(&w.batch, ctx, budget, gpus, 25e9, &cost)
                .expect("same budget as the 1-GPU run");
            t.row([
                format!("{budget_gib:.0}GB"),
                gpus.to_string(),
                rep.base.num_micro_batches.to_string(),
                secs(rep.cpu_seconds),
                secs(rep.max_gpu_seconds),
                secs(rep.comm_seconds),
                secs(rep.iteration_seconds),
                format!(
                    "{:+.1}%",
                    100.0 * (rep.iteration_seconds - one.iteration_seconds) / one.iteration_seconds
                ),
            ]);
        }
    }
    t.print();
    println!("(paper: two GPUs reduce the iteration only 3-5% because micro-batch");
    println!("generation stays serial on the CPU; inter-GPU communication adds ~1%)");
}
