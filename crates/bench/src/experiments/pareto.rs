//! Figure 10 (compute-vs-memory Pareto frontier), Figure 14 (load
//! balance), Figure 15 (bucket-group size vs memory budget), and Figure 16
//! (computation efficiency).

use crate::context::{gib, load_workload, RTX6000_GIB};
use crate::output::{mem, secs, Table};
use buffalo_core::sim::{simulate_iteration, SimContext, SimReport, Strategy};
use buffalo_core::TrainError;
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{AggregatorKind, CostModel, DeviceMemory};

fn whole_batch(w: &crate::context::Workload, ctx: SimContext<'_>, cost: &CostModel) -> SimReport {
    let unlimited = DeviceMemory::new(u64::MAX);
    simulate_iteration(&w.batch, ctx, Strategy::Full, &unlimited, cost)
        .expect("unlimited device cannot OOM")
}

/// Figure 10: end-to-end iteration time and peak CUDA memory with varying
/// numbers of micro-batches, for DGL/PyG (no partitioning), Betty, and
/// Buffalo, under the 24 GB budget.
pub fn fig10(quick: bool) {
    let cost = CostModel::rtx6000();
    let ks: &[usize] = if quick { &[2, 8] } else { &[2, 4, 8, 16, 32] };
    let datasets = if quick {
        vec![DatasetName::Cora, DatasetName::OgbnArxiv]
    } else {
        vec![
            DatasetName::Cora,
            DatasetName::Pubmed,
            DatasetName::Reddit,
            DatasetName::OgbnArxiv,
            DatasetName::OgbnProducts,
        ]
    };
    let mut t = Table::new([
        "dataset",
        "system",
        "micro-batches",
        "iteration time",
        "peak memory",
        "status",
    ]);
    for name in datasets {
        let w = load_workload(name, quick);
        let shape = w.default_shape();
        let ctx = SimContext {
            shape: &shape,
            fanouts: &w.fanouts,
            clustering: w.clustering,
            original: &w.dataset.graph,
        };
        let whole = whole_batch(&w, ctx, &cost);
        // DGL/PyG: whole batch against the 24 GB budget.
        if gib(whole.peak_mem_bytes) <= RTX6000_GIB {
            t.row([
                name.to_string(),
                "dgl/pyg".into(),
                "1".into(),
                secs(whole.phases.total()),
                mem(whole.peak_mem_bytes),
                "ok".into(),
            ]);
        } else {
            t.row([
                name.to_string(),
                "dgl/pyg".into(),
                "1".into(),
                "-".into(),
                mem(whole.peak_mem_bytes),
                "OOM".into(),
            ]);
        }
        // Buffalo at the paper's actual 24 GB budget: the scheduler picks
        // its own K (1 when the batch already fits).
        let rtx = DeviceMemory::with_gib(RTX6000_GIB);
        match simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &rtx, &cost) {
            Ok(rep) => {
                t.row([
                    name.to_string(),
                    "buffalo@24GB".into(),
                    rep.num_micro_batches.to_string(),
                    secs(rep.phases.total()),
                    mem(rep.peak_mem_bytes),
                    "ok".into(),
                ]);
            }
            Err(e) => {
                t.row([
                    name.to_string(),
                    "buffalo@24GB".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed ({e})"),
                ]);
            }
        }
        for &k in ks {
            if k > w.batch.num_seeds {
                continue;
            }
            // Betty at exactly k micro-batches.
            let unlimited = DeviceMemory::new(u64::MAX);
            match simulate_iteration(&w.batch, ctx, Strategy::Betty { k }, &unlimited, &cost) {
                Ok(rep) => {
                    t.row([
                        name.to_string(),
                        "betty".into(),
                        k.to_string(),
                        secs(rep.phases.total()),
                        mem(rep.peak_mem_bytes),
                        "ok".into(),
                    ]);
                }
                Err(e) => {
                    t.row([
                        name.to_string(),
                        "betty".into(),
                        k.to_string(),
                        "-".into(),
                        "-".into(),
                        format!("no data ({e})"),
                    ]);
                }
            }
            // Buffalo with a budget that targets ~k micro-batches.
            let budget = DeviceMemory::new((whole.peak_mem_bytes / k as u64).max(1) * 11 / 10);
            match simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &budget, &cost) {
                Ok(rep) => {
                    t.row([
                        name.to_string(),
                        "buffalo".into(),
                        rep.num_micro_batches.to_string(),
                        secs(rep.phases.total()),
                        mem(rep.peak_mem_bytes),
                        "ok".into(),
                    ]);
                }
                Err(TrainError::Schedule(e)) => {
                    t.row([
                        name.to_string(),
                        "buffalo".into(),
                        format!("target {k}"),
                        "-".into(),
                        "-".into(),
                        format!("infeasible ({e})"),
                    ]);
                }
                Err(e) => {
                    t.row([
                        name.to_string(),
                        "buffalo".into(),
                        format!("target {k}"),
                        "-".into(),
                        "-".into(),
                        format!("failed ({e})"),
                    ]);
                }
            }
        }
    }
    t.print();
}

/// Figure 14: memory consumption of every micro-batch after Buffalo
/// scheduling — the paper reports a 4–6 % spread.
pub fn fig14(quick: bool) {
    let cost = CostModel::rtx6000();
    let mut t = Table::new(["dataset", "micro-batches", "min", "max", "spread %"]);
    for (name, k) in [
        (DatasetName::OgbnArxiv, 4u64),
        (DatasetName::OgbnProducts, 12),
        (DatasetName::OgbnPapers, 8),
    ] {
        let w = load_workload(name, quick);
        let shape = w.default_shape();
        let ctx = SimContext {
            shape: &shape,
            fanouts: &w.fanouts,
            clustering: w.clustering,
            original: &w.dataset.graph,
        };
        let whole = whole_batch(&w, ctx, &cost);
        let budget = DeviceMemory::new((whole.peak_mem_bytes / k).max(1) * 13 / 10);
        match simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &budget, &cost) {
            Ok(rep) => {
                let max = *rep.per_micro_mem.iter().max().unwrap();
                let min = *rep.per_micro_mem.iter().min().unwrap();
                t.row([
                    name.to_string(),
                    rep.num_micro_batches.to_string(),
                    mem(min),
                    mem(max),
                    format!("{:.1}", 100.0 * (max - min) as f64 / max as f64),
                ]);
            }
            Err(e) => {
                t.row([
                    name.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {e}"),
                ]);
            }
        }
    }
    t.print();
    println!("(paper: 4-6% spread across micro-batches)");
}

/// Figure 15: bucket-group size vs memory budget (16/24/48/80 GB, A100).
pub fn fig15(quick: bool) {
    let cost = CostModel::a100_80gb();
    let w = load_workload(DatasetName::OgbnProducts, quick);
    // A heavier model than the default so even 80 GB is interesting
    // (the paper's products batch exceeds 80 GB at its full scale).
    let shape = w.shape(4096, AggregatorKind::Lstm);
    let ctx = SimContext {
        shape: &shape,
        fanouts: &w.fanouts,
        clustering: w.clustering,
        original: &w.dataset.graph,
    };
    let mut t = Table::new([
        "budget",
        "micro-batches",
        "avg group size (outputs)",
        "peak memory",
        "iteration time",
    ]);
    for budget_gib in [16.0f64, 24.0, 48.0, 80.0] {
        let device = DeviceMemory::with_gib(budget_gib);
        match simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &device, &cost) {
            Ok(rep) => {
                t.row([
                    format!("{budget_gib:.0}GB"),
                    rep.num_micro_batches.to_string(),
                    (w.batch.num_seeds / rep.num_micro_batches.max(1)).to_string(),
                    mem(rep.peak_mem_bytes),
                    secs(rep.phases.total()),
                ]);
            }
            Err(e) => {
                t.row([
                    format!("{budget_gib:.0}GB"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {e}"),
                ]);
            }
        }
    }
    t.print();
    println!("(paper: larger budgets -> larger bucket groups -> shorter training)");
}

/// Figure 16: computation efficiency (nodes processed per second of
/// iteration time) for Random/Range/METIS/Betty vs Buffalo.
///
/// Every strategy must fit the same memory budget; the batch-level
/// baselines increase their micro-batch count until every micro-batch
/// fits, exactly as the paper describes ("Buffalo completes training
/// using 12 micro-batches while Random and Range require 14").
pub fn fig16(quick: bool) {
    let cost = CostModel::rtx6000();
    let w = load_workload(DatasetName::OgbnProducts, quick);
    let shape = w.default_shape();
    let ctx = SimContext {
        shape: &shape,
        fanouts: &w.fanouts,
        clustering: w.clustering,
        original: &w.dataset.graph,
    };
    let whole = whole_batch(&w, ctx, &cost);
    let budget = DeviceMemory::new((whole.peak_mem_bytes / 8).max(1) * 11 / 10);
    let mut t = Table::new([
        "strategy",
        "micro-batches",
        "total nodes",
        "iteration time",
        "nodes/s",
    ]);
    let mut best_baseline = 0.0f64;
    let mut buffalo_eff = 0.0f64;
    // Find the minimum K at which a fixed-K strategy fits the budget.
    let fit = |make: &dyn Fn(usize) -> Strategy| -> Option<buffalo_core::sim::SimReport> {
        let mut k = 2;
        while k <= w.batch.num_seeds {
            match simulate_iteration(&w.batch, ctx, make(k), &budget, &cost) {
                Ok(rep) => return Some(rep),
                Err(TrainError::Oom(_)) => k += 1,
                Err(_) => return None,
            }
        }
        None
    };
    type StrategyMaker = Box<dyn Fn(usize) -> Strategy>;
    let baselines: Vec<(&str, StrategyMaker)> = vec![
        ("random", Box::new(|k| Strategy::Random { k, seed: 7 })),
        ("range", Box::new(|k| Strategy::Range { k })),
        ("metis", Box::new(|k| Strategy::Metis { k })),
        ("betty", Box::new(|k| Strategy::Betty { k })),
    ];
    for (name, make) in &baselines {
        match fit(make.as_ref()) {
            Some(rep) => {
                let eff = rep.computation_efficiency();
                best_baseline = best_baseline.max(eff);
                t.row([
                    (*name).into(),
                    rep.num_micro_batches.to_string(),
                    rep.total_nodes.to_string(),
                    secs(rep.phases.total()),
                    format!("{eff:.0}"),
                ]);
            }
            None => {
                t.row::<String, _>([
                    (*name).into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "failed".into(),
                ]);
            }
        }
    }
    match simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &budget, &cost) {
        Ok(rep) => {
            buffalo_eff = rep.computation_efficiency();
            t.row([
                "buffalo".into(),
                rep.num_micro_batches.to_string(),
                rep.total_nodes.to_string(),
                secs(rep.phases.total()),
                format!("{buffalo_eff:.0}"),
            ]);
        }
        Err(e) => {
            t.row([
                "buffalo".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("failed: {e}"),
            ]);
        }
    }
    t.print();
    if best_baseline > 0.0 && buffalo_eff > 0.0 {
        println!(
            "Buffalo vs best baseline: {:+.1}% (paper: +36.4%)",
            100.0 * (buffalo_eff - best_baseline) / best_baseline
        );
    }
}
