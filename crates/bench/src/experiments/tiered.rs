//! `ablate-tiered`: micro-batching (Buffalo) vs activation spilling to a
//! slow memory tier — the extension study for the paper's closing remark
//! that Buffalo "is a solution to leverage tiered memory" (§VI).

use crate::context::load_workload;
use crate::output::{mem, secs, Table};
use buffalo_blocks::{generate_blocks_fast, GenerateOptions};
use buffalo_core::sim::{simulate_iteration, SimContext, Strategy};
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::tiered::{plan_spill, TieredConfig};
use buffalo_memsim::{measure, CostModel, DeviceMemory};

/// Sweeps the fast-tier budget on OGBN-products and compares one
/// iteration of (a) Buffalo micro-batching and (b) whole-batch training
/// with activation spilling over PCIe and over a CXL-class link.
pub fn tiered(quick: bool) {
    let w = load_workload(DatasetName::OgbnProducts, quick);
    let shape = w.default_shape();
    let ctx = SimContext {
        shape: &shape,
        fanouts: &w.fanouts,
        clustering: w.clustering,
        original: &w.dataset.graph,
    };
    let cost = CostModel::rtx6000();
    // Whole-batch blocks once: the spilling baseline trains the same
    // batch unsplit.
    let blocks = generate_blocks_fast(
        &w.batch.graph,
        w.batch.num_seeds,
        shape.num_layers,
        GenerateOptions::default(),
    );
    let breakdown = measure::training_memory(&blocks, &shape);
    let base_step = cost.training_seconds(&blocks, &shape)
        + cost.transfer_seconds(measure::transfer_bytes(&blocks, &shape) as f64);
    println!(
        "whole batch: {} total ({} workspace)",
        mem(breakdown.total()),
        mem(breakdown.workspace)
    );
    let mut t = Table::new([
        "fast tier",
        "buffalo K",
        "buffalo time",
        "spill (PCIe 12GB/s)",
        "spill (CXL 48GB/s)",
    ]);
    for frac in [2u64, 4, 8] {
        let fast = breakdown.total() / frac;
        let device = DeviceMemory::new(fast);
        let buffalo = simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &device, &cost);
        let (k, b_time) = match &buffalo {
            Ok(rep) => (rep.num_micro_batches.to_string(), secs(rep.phases.total())),
            Err(e) => ("-".into(), format!("failed: {e}")),
        };
        let spill_time = |bw: f64| {
            let plan = plan_spill(
                &breakdown,
                &TieredConfig {
                    fast_bytes: fast,
                    spill_bw: bw,
                },
            );
            if plan.feasible {
                secs(base_step + plan.spill_seconds)
            } else {
                "infeasible".to_string()
            }
        };
        t.row([mem(fast), k, b_time, spill_time(12e9), spill_time(48e9)]);
    }
    t.print();
    println!("(micro-batching pays redundancy + per-batch overhead; spilling pays two");
    println!("link crossings per spilled byte — fast links move the crossover toward spilling)");
}
