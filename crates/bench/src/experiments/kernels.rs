//! CPU kernel microbenchmark: tiled matmul and block-parallel SAGE
//! aggregation, serial vs thread-pooled and scalar vs SIMD, written to
//! `BENCH_kernels.json`.
//!
//! The JSON records the host context next to every number so a reader can
//! judge what the numbers mean:
//!
//! * `host_threads` — what `std::thread::available_parallelism` reports.
//!   When it is below `parallel_threads`, all thread configs time-slice
//!   the same CPUs and a parallel/serial ratio measures dispatch overhead,
//!   not scalability — so `speedup` is written as JSON `null` and the
//!   `note` says why.
//! * `cpu_features` — the ISA extensions `is_x86_feature_detected!` found,
//!   so a `simd_ops` row for a backend can be traced to the hardware that
//!   produced it.
//!
//! Every timed configuration is checked for correctness first: thread
//! counts must be bit-identical under a fixed backend, each SIMD backend
//! must be run-to-run deterministic, and the bf16 widening kernel must be
//! exact (a pure `u16 << 16` bit shift) on every backend.

use buffalo_blocks::Block;
use buffalo_core::models::SageLayer;
use buffalo_memsim::AggregatorKind;
use buffalo_par::Parallelism;
use buffalo_simd::{detected_features, f32_to_bf16, SimdBackend};
use buffalo_tensor::Tensor;
use std::time::Instant;

const PARALLEL_THREADS: usize = 4;

fn config(threads: usize, simd: SimdBackend) -> Parallelism {
    Parallelism {
        threads,
        min_parallel_rows: 1,
        simd,
        ..Parallelism::auto()
    }
}

/// Median-of-runs wall time in seconds.
fn time_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct OpResult {
    name: String,
    serial_s: f64,
    parallel_s: f64,
}

impl OpResult {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }
}

/// One `(op, backend)` timing row for the SIMD comparison table.
struct SimdRow {
    op: String,
    backend: SimdBackend,
    time_s: f64,
}

fn dense_block(n_dst: usize, n_src: usize, deg: usize) -> Block {
    let dst_nodes: Vec<u32> = (0..n_dst as u32).collect();
    let src_nodes: Vec<u32> = (0..n_src as u32).collect();
    let offsets: Vec<usize> = (0..=n_dst).map(|i| i * deg).collect();
    let indices: Vec<u32> = (0..n_dst * deg)
        .map(|e| ((e * 2654435761) % n_src) as u32)
        .collect();
    Block::from_parts(dst_nodes, src_nodes, offsets, indices)
}

fn bench_matmul(n: usize, reps: usize) -> OpResult {
    let a = Tensor::xavier(n, n, 1);
    let b = Tensor::xavier(n, n, 2);
    let serial = config(1, SimdBackend::Scalar);
    let parallel = config(PARALLEL_THREADS, SimdBackend::Scalar);
    // Equality first: under a fixed backend the parallel kernel must be
    // bit-identical to the serial one.
    assert_eq!(
        a.matmul_with(&b, &serial).data(),
        a.matmul_with(&b, &parallel).data(),
        "matmul {n}x{n}: parallel result diverged"
    );
    OpResult {
        name: format!("matmul_{n}x{n}"),
        serial_s: time_secs(reps, || {
            a.matmul_with(&b, &serial);
        }),
        parallel_s: time_secs(reps, || {
            a.matmul_with(&b, &parallel);
        }),
    }
}

fn bench_aggregate(reps: usize) -> OpResult {
    let (n_dst, n_src, dim) = (2_048, 4_096, 64);
    let block = dense_block(n_dst, n_src, 12);
    let h = Tensor::xavier(n_src, dim, 3);
    let layer = SageLayer::new(dim, dim, AggregatorKind::Mean, false, 5);
    config(1, SimdBackend::Scalar).install();
    let (want, _) = layer.forward(&block, &h);
    config(PARALLEL_THREADS, SimdBackend::Scalar).install();
    let (got, _) = layer.forward(&block, &h);
    assert_eq!(
        want.data(),
        got.data(),
        "sage aggregation: parallel result diverged"
    );
    config(1, SimdBackend::Scalar).install();
    let serial_s = time_secs(reps, || {
        layer.forward(&block, &h);
    });
    config(PARALLEL_THREADS, SimdBackend::Scalar).install();
    let parallel_s = time_secs(reps, || {
        layer.forward(&block, &h);
    });
    Parallelism::auto().install();
    OpResult {
        name: "sage_mean_forward_2048x64".into(),
        serial_s,
        parallel_s,
    }
}

/// Times the matmul axpy path (NN), the dot path (NT), SAGE mean
/// aggregation, and the bf16 widening gather under every backend the host
/// supports, asserting run-to-run determinism for each row.
fn bench_simd_ops(n: usize, reps: usize) -> Vec<SimdRow> {
    let mut rows = Vec::new();
    let a = Tensor::xavier(n, n, 1);
    let b = Tensor::xavier(n, n, 2);
    let (n_dst, n_src, dim) = (2_048, 4_096, 64);
    let block = dense_block(n_dst, n_src, 12);
    let h = Tensor::xavier(n_src, dim, 3);
    let layer = SageLayer::new(dim, dim, AggregatorKind::Mean, false, 5);
    // A non-lane-multiple element count so SIMD tails are exercised.
    let bf16_table: Vec<u16> = (0..n * n + 5)
        .map(|i| f32_to_bf16((i as f32).sin()))
        .collect();
    let mut widened = vec![0.0f32; bf16_table.len()];

    for backend in SimdBackend::available() {
        let par = config(1, backend);

        // matmul, axpy path: run twice, assert bitwise determinism.
        let first = a.matmul_with(&b, &par);
        assert_eq!(
            first.data(),
            a.matmul_with(&b, &par).data(),
            "matmul {backend:?}: run-to-run nondeterminism"
        );
        rows.push(SimdRow {
            op: format!("matmul_{n}x{n}"),
            backend,
            time_s: time_secs(reps, || {
                a.matmul_with(&b, &par);
            }),
        });

        // matmul_nt, dot path.
        let first = a.matmul_nt_with(&b, &par);
        assert_eq!(
            first.data(),
            a.matmul_nt_with(&b, &par).data(),
            "matmul_nt {backend:?}: run-to-run nondeterminism"
        );
        rows.push(SimdRow {
            op: format!("matmul_nt_{n}x{n}"),
            backend,
            time_s: time_secs(reps, || {
                a.matmul_nt_with(&b, &par);
            }),
        });

        // SAGE mean aggregation (axpy over neighbor rows).
        par.install();
        let (first, _) = layer.forward(&block, &h);
        let (second, _) = layer.forward(&block, &h);
        assert_eq!(
            first.data(),
            second.data(),
            "sage mean {backend:?}: run-to-run nondeterminism"
        );
        rows.push(SimdRow {
            op: "sage_mean_forward_2048x64".into(),
            backend,
            time_s: time_secs(reps, || {
                layer.forward(&block, &h);
            }),
        });

        // bf16 widening gather: exactness, not just determinism — widening
        // is a pure left shift, so every backend must agree bitwise.
        backend.widen_bf16(&mut widened, &bf16_table);
        for (&w, &h16) in widened.iter().zip(&bf16_table) {
            assert_eq!(
                w.to_bits(),
                (h16 as u32) << 16,
                "widen_bf16 {backend:?}: inexact widening"
            );
        }
        rows.push(SimdRow {
            op: format!("widen_bf16_{}", bf16_table.len()),
            backend,
            time_s: time_secs(reps, || {
                backend.widen_bf16(&mut widened, &bf16_table);
            }),
        });
    }
    Parallelism::auto().install();
    rows
}

/// Runs the kernel microbenchmarks; with `write_bench` it also rewrites
/// `BENCH_kernels.json`.
pub fn kernels(quick: bool, write_bench: bool) {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let host_limited = host_threads < PARALLEL_THREADS;
    let (sizes, reps): (&[usize], usize) = if quick { (&[256], 3) } else { (&[256, 512], 5) };
    let mut results: Vec<OpResult> = sizes.iter().map(|&n| bench_matmul(n, reps)).collect();
    results.push(bench_aggregate(reps));
    let simd_rows = bench_simd_ops(sizes[0], reps);

    let features = detected_features();
    let feature_list: Vec<String> = features
        .iter()
        .map(|(name, on)| format!("{name}={on}"))
        .collect();
    println!(
        "host_threads={host_threads} parallel_threads={PARALLEL_THREADS} cpu: {}",
        feature_list.join(" ")
    );
    for r in &results {
        let speedup = if host_limited {
            "n/a (host-limited)".to_string()
        } else {
            format!("{:.2}x", r.speedup())
        };
        println!(
            "{:<28} serial {:.4}s  {}t {:.4}s  speedup {speedup}",
            r.name, r.serial_s, PARALLEL_THREADS, r.parallel_s
        );
    }
    for r in &simd_rows {
        println!("{:<28} {:<6} {:.4}s", r.op, r.backend.as_str(), r.time_s);
    }

    let note = if host_limited {
        "host_threads < parallel_threads: all thread configs time-slice the same \
         CPUs, so thread speedups are written as null (they would measure \
         dispatch overhead, not scalability); simd_ops rows are single-threaded \
         and remain meaningful"
    } else {
        "speedups are meaningful only when host_threads >= parallel_threads; \
         on a 1-core host all configs time-slice one CPU"
    };
    let ops: Vec<String> = results
        .iter()
        .map(|r| {
            let speedup = if host_limited {
                "null".to_string()
            } else {
                format!("{:.4}", r.speedup())
            };
            format!(
                "    {{\"op\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {speedup}}}",
                r.name, r.serial_s, r.parallel_s
            )
        })
        .collect();
    let simd_ops: Vec<String> = simd_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": \"{}\", \"backend\": \"{}\", \"time_s\": {:.6}}}",
                r.op,
                r.backend.as_str(),
                r.time_s
            )
        })
        .collect();
    let cpu_features: Vec<String> = features
        .iter()
        .map(|(name, on)| format!("\"{name}\": {on}"))
        .collect();
    let json = format!(
        "{{\n  \"host_threads\": {host_threads},\n  \"parallel_threads\": {PARALLEL_THREADS},\n  \"cpu_features\": {{{}}},\n  \"note\": \"{note}\",\n  \"ops\": [\n{}\n  ],\n  \"simd_ops\": [\n{}\n  ]\n}}\n",
        cpu_features.join(", "),
        ops.join(",\n"),
        simd_ops.join(",\n")
    );
    crate::output::write_artifact("BENCH_kernels.json", &json, write_bench);
}
