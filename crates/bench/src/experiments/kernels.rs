//! CPU kernel microbenchmark: tiled matmul and block-parallel SAGE
//! aggregation, serial vs thread-pooled, written to `BENCH_kernels.json`.
//!
//! The JSON records `host_threads` (what `std::thread::available_parallelism`
//! reports) next to every speedup: on a single-core container all thread
//! counts time-slice one CPU, so a parallel/serial ratio near 1.0 there
//! measures dispatch overhead, not the kernel's scalability.

use buffalo_blocks::Block;
use buffalo_core::models::SageLayer;
use buffalo_memsim::AggregatorKind;
use buffalo_par::Parallelism;
use buffalo_tensor::Tensor;
use std::time::Instant;

const PARALLEL_THREADS: usize = 4;

fn config(threads: usize) -> Parallelism {
    Parallelism {
        threads,
        min_parallel_rows: 1,
        ..Parallelism::auto()
    }
}

/// Median-of-runs wall time in seconds.
fn time_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct OpResult {
    name: String,
    serial_s: f64,
    parallel_s: f64,
}

impl OpResult {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }
}

fn dense_block(n_dst: usize, n_src: usize, deg: usize) -> Block {
    let dst_nodes: Vec<u32> = (0..n_dst as u32).collect();
    let src_nodes: Vec<u32> = (0..n_src as u32).collect();
    let offsets: Vec<usize> = (0..=n_dst).map(|i| i * deg).collect();
    let indices: Vec<u32> = (0..n_dst * deg)
        .map(|e| ((e * 2654435761) % n_src) as u32)
        .collect();
    Block::from_parts(dst_nodes, src_nodes, offsets, indices)
}

fn bench_matmul(n: usize, reps: usize) -> OpResult {
    let a = Tensor::xavier(n, n, 1);
    let b = Tensor::xavier(n, n, 2);
    let serial = config(1);
    let parallel = config(PARALLEL_THREADS);
    // Equality first: the parallel kernel must be bit-identical.
    assert_eq!(
        a.matmul_with(&b, &serial).data(),
        a.matmul_with(&b, &parallel).data(),
        "matmul {n}x{n}: parallel result diverged"
    );
    OpResult {
        name: format!("matmul_{n}x{n}"),
        serial_s: time_secs(reps, || {
            a.matmul_with(&b, &serial);
        }),
        parallel_s: time_secs(reps, || {
            a.matmul_with(&b, &parallel);
        }),
    }
}

fn bench_aggregate(reps: usize) -> OpResult {
    let (n_dst, n_src, dim) = (2_048, 4_096, 64);
    let block = dense_block(n_dst, n_src, 12);
    let h = Tensor::xavier(n_src, dim, 3);
    let layer = SageLayer::new(dim, dim, AggregatorKind::Mean, false, 5);
    config(1).install();
    let (want, _) = layer.forward(&block, &h);
    config(PARALLEL_THREADS).install();
    let (got, _) = layer.forward(&block, &h);
    assert_eq!(
        want.data(),
        got.data(),
        "sage aggregation: parallel result diverged"
    );
    config(1).install();
    let serial_s = time_secs(reps, || {
        layer.forward(&block, &h);
    });
    config(PARALLEL_THREADS).install();
    let parallel_s = time_secs(reps, || {
        layer.forward(&block, &h);
    });
    Parallelism::auto().install();
    OpResult {
        name: "sage_mean_forward_2048x64".into(),
        serial_s,
        parallel_s,
    }
}

/// Runs the kernel microbenchmarks; with `write_bench` it also rewrites
/// `BENCH_kernels.json`.
pub fn kernels(quick: bool, write_bench: bool) {
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (sizes, reps): (&[usize], usize) = if quick { (&[256], 3) } else { (&[256, 512], 5) };
    let mut results: Vec<OpResult> = sizes.iter().map(|&n| bench_matmul(n, reps)).collect();
    results.push(bench_aggregate(reps));

    println!("host_threads={host_threads} parallel_threads={PARALLEL_THREADS}");
    for r in &results {
        println!(
            "{:<28} serial {:.4}s  {}t {:.4}s  speedup {:.2}x",
            r.name,
            r.serial_s,
            PARALLEL_THREADS,
            r.parallel_s,
            r.speedup()
        );
    }

    let ops: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"op\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.4}}}",
                r.name,
                r.serial_s,
                r.parallel_s,
                r.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"host_threads\": {host_threads},\n  \"parallel_threads\": {PARALLEL_THREADS},\n  \"note\": \"speedups are meaningful only when host_threads >= parallel_threads; on a 1-core host all configs time-slice one CPU\",\n  \"ops\": [\n{}\n  ]\n}}\n",
        ops.join(",\n")
    );
    crate::output::write_artifact("BENCH_kernels.json", &json, write_bench);
}
