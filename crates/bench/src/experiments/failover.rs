//! Elastic multi-device failover experiment, written to
//! `BENCH_failover.json`.
//!
//! Trains the same workload over device pools of 2 and 4 members while
//! killing 0, 1, 2, or all members mid-run with `lose:` faults. For each
//! scenario we record the completion rate (iterations that produced a
//! gradient step), the failover activity (`DeviceLost` events, the
//! iteration the loss landed in), the re-shard latency (extra wall time
//! of the failover iteration over the pre-loss mean), the pre- and
//! post-loss throughput, the per-member allocation counts, and — the
//! headline determinism claim — whether the per-iteration loss trail is
//! bitwise identical to the fault-free run on the same pool size.
//! Failover is pure re-routing of an in-order Execute stage, so every
//! survivable scenario must reproduce the baseline losses exactly; the
//! lose-all scenario is the honest failure floor (recovery exhausts, the
//! remaining iterations contribute nothing).
//!
//! The `at_alloc` fire points are derived from each pool's fault-free
//! baseline (a fraction of the victim's total allocation count), so the
//! loss always lands mid-run regardless of workload size.

use crate::context::load_workload;
use crate::output::Table;
use buffalo_core::train::{
    BuffaloTrainer, DevicePool, RecoveryAction, RecoveryPolicy, TrainConfig,
};
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{AggregatorKind, CostModel, Device, DeviceMemory, FaultPlan, GnnShape};
use std::time::Instant;

const FANOUTS: [usize; 2] = [5, 10];
const MAX_GPUS: usize = 4;

struct Scenario {
    name: &'static str,
    gpus: usize,
    /// Member indices to kill, paired with the fraction of the victim's
    /// fault-free allocation count at which the loss fires.
    losses: &'static [(usize, f64)],
}

struct Outcome {
    name: String,
    gpus: usize,
    lost: usize,
    iterations: usize,
    completed: usize,
    device_lost_events: usize,
    /// Iteration index (0-based) of the first `DeviceLost` event.
    failover_iter: Option<usize>,
    iter_walls: Vec<f64>,
    losses: Vec<f32>,
    per_device_allocs: Vec<u64>,
    dead: Vec<usize>,
}

impl Outcome {
    fn completion_rate(&self) -> f64 {
        self.completed as f64 / self.iterations.max(1) as f64
    }

    /// Extra wall seconds the failover iteration took over the mean of
    /// the iterations before it — the observable cost of marking the
    /// device dead, re-routing, and replaying the in-flight micro-batch.
    /// Wall-clock telemetry: noisy on a loaded machine, zero when the
    /// loss landed in iteration 0 (no pre-loss mean to compare against).
    fn reshard_latency_s(&self) -> f64 {
        let Some(at) = self.failover_iter else {
            return 0.0;
        };
        if at == 0 || at >= self.iter_walls.len() {
            return 0.0;
        }
        let pre_mean = self.iter_walls[..at].iter().sum::<f64>() / at as f64;
        (self.iter_walls[at] - pre_mean).max(0.0)
    }

    /// Iterations per second over `range` of the wall list.
    fn throughput(&self, walls: &[f64]) -> f64 {
        let total: f64 = walls.iter().sum();
        if total > 0.0 {
            walls.len() as f64 / total
        } else {
            0.0
        }
    }

    fn pre_loss_throughput(&self) -> f64 {
        match self.failover_iter {
            Some(at) if at > 0 => self.throughput(&self.iter_walls[..at]),
            _ => self.throughput(&self.iter_walls),
        }
    }

    fn post_loss_throughput(&self) -> f64 {
        match self.failover_iter {
            // Skip the failover iteration itself: it pays the re-shard
            // cost, which reshard_latency_s reports separately.
            Some(at) if at + 1 < self.iter_walls.len() => {
                self.throughput(&self.iter_walls[at + 1..])
            }
            _ => 0.0,
        }
    }
}

fn run_scenario(
    sc: &Scenario,
    spec: &str,
    iters: usize,
    config: &TrainConfig,
    w: &crate::context::Workload,
    budget: u64,
    cost: &CostModel,
) -> Outcome {
    let plan = if spec.is_empty() {
        FaultPlan::none()
    } else {
        FaultPlan::parse(spec).expect("scenario fault spec parses")
    };
    let pool = DevicePool::homogeneous(sc.gpus, budget, &plan).expect("non-empty pool");
    let mut trainer =
        BuffaloTrainer::new(config.clone(), w.clustering).with_recovery(RecoveryPolicy {
            max_retries: 8,
            ..RecoveryPolicy::default()
        });
    let mut out = Outcome {
        name: sc.name.to_string(),
        gpus: sc.gpus,
        lost: sc.losses.len(),
        iterations: iters,
        completed: 0,
        device_lost_events: 0,
        failover_iter: None,
        iter_walls: Vec::with_capacity(iters),
        losses: Vec::with_capacity(iters),
        per_device_allocs: Vec::new(),
        dead: Vec::new(),
    };
    for i in 0..iters {
        let t = Instant::now();
        match trainer.train_iteration(&w.dataset, &w.batch, &pool, cost) {
            Ok(stats) => {
                out.completed += 1;
                out.losses.push(stats.loss);
                for ev in &stats.recovery {
                    if matches!(ev.action, RecoveryAction::DeviceLost { .. }) {
                        out.device_lost_events += 1;
                        out.failover_iter.get_or_insert(i);
                    }
                }
            }
            Err(e) => {
                // No gradient step; keep going so the completion rate
                // reflects how often the pool could not recover.
                eprintln!("  [{}] iteration failed: {e}", sc.name);
            }
        }
        out.iter_walls.push(t.elapsed().as_secs_f64());
    }
    out.per_device_allocs = pool.per_device_alloc_calls();
    out.dead = pool.dead();
    out
}

/// Runs the device-loss failover sweep; with `write_bench` it also
/// rewrites `BENCH_failover.json`.
pub fn failover(quick: bool, write_bench: bool) {
    let w = load_workload(DatasetName::Cora, quick);
    let cost = CostModel::rtx6000();
    let iters = if quick { 6 } else { 12 };
    let config = TrainConfig {
        shape: GnnShape::new(
            w.dataset.spec.feat_dim,
            32,
            2,
            w.dataset.spec.num_classes,
            AggregatorKind::Mean,
        ),
        fanouts: FANOUTS.to_vec(),
        lr: 0.01,
        seed: 17,
        parallelism: buffalo_par::Parallelism::auto(),
    };
    // Probe the whole-batch footprint, then give every pool member a
    // budget that forces several micro-batches, so the round-robin has
    // real work to shard.
    let mut probe = BuffaloTrainer::new(config.clone(), w.clustering);
    let big = DeviceMemory::new(u64::MAX);
    let whole = probe
        .train_iteration(&w.dataset, &w.batch, &big, &cost)
        .expect("unlimited device");
    let budget = (whole.peak_mem_bytes * 3 / 5).max(1);

    let scenarios = [
        Scenario {
            name: "2gpu-fault-free",
            gpus: 2,
            losses: &[],
        },
        Scenario {
            name: "2gpu-lose-1",
            gpus: 2,
            losses: &[(1, 0.34)],
        },
        Scenario {
            name: "2gpu-lose-all",
            gpus: 2,
            losses: &[(0, 0.55), (1, 0.34)],
        },
        Scenario {
            name: "4gpu-fault-free",
            gpus: 4,
            losses: &[],
        },
        Scenario {
            name: "4gpu-lose-1",
            gpus: 4,
            losses: &[(2, 0.34)],
        },
        Scenario {
            name: "4gpu-lose-2",
            gpus: 4,
            losses: &[(1, 0.25), (3, 0.55)],
        },
    ];

    // Fault-free baselines per pool size: the bitwise reference trail and
    // the per-member allocation counts the `lose:` fire points scale off.
    let mut baselines: Vec<Option<Outcome>> = (0..=MAX_GPUS).map(|_| None).collect();
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(scenarios.len());
    for sc in &scenarios {
        let spec = match baselines[sc.gpus].as_ref() {
            None => String::new(),
            Some(base) => sc
                .losses
                .iter()
                .map(|&(victim, frac)| {
                    let total = base.per_device_allocs.get(victim).copied().unwrap_or(0);
                    let at = ((total as f64 * frac) as u64).max(1);
                    format!("lose:{victim},{at}")
                })
                .collect::<Vec<_>>()
                .join(";"),
        };
        let out = run_scenario(sc, &spec, iters, &config, &w, budget, &cost);
        if sc.losses.is_empty() {
            baselines[sc.gpus] = Some(Outcome {
                name: out.name.clone(),
                iter_walls: out.iter_walls.clone(),
                losses: out.losses.clone(),
                per_device_allocs: out.per_device_allocs.clone(),
                dead: out.dead.clone(),
                ..out
            });
        }
        outcomes.push(out);
    }

    let mut t = Table::new([
        "scenario",
        "pool",
        "lost",
        "completed",
        "loss identical",
        "reshard s",
        "pre it/s",
        "post it/s",
        "allocs/device",
    ]);
    for o in &outcomes {
        let base_losses = baselines[o.gpus]
            .as_ref()
            .map(|b| b.losses.as_slice())
            .unwrap_or(&[]);
        t.row([
            o.name.clone(),
            o.gpus.to_string(),
            o.lost.to_string(),
            format!("{}/{}", o.completed, o.iterations),
            (o.losses == base_losses).to_string(),
            format!("{:.4}", o.reshard_latency_s()),
            format!("{:.2}", o.pre_loss_throughput()),
            if o.failover_iter.is_some() {
                format!("{:.2}", o.post_loss_throughput())
            } else {
                "-".into()
            },
            format!("{:?}", o.per_device_allocs),
        ]);
    }
    t.print();
    println!(
        "(per-device budget {budget} B = 60% of whole-batch peak; every \
         survivable loss scenario must be bitwise identical to its pool's \
         fault-free run; lose-all is the expected failure floor)"
    );

    let rows: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let base_losses = baselines[o.gpus]
                .as_ref()
                .map(|b| b.losses.as_slice())
                .unwrap_or(&[]);
            let allocs: Vec<String> = o.per_device_allocs.iter().map(u64::to_string).collect();
            let dead: Vec<String> = o.dead.iter().map(usize::to_string).collect();
            format!(
                "    {{\"scenario\": \"{}\", \"pool_size\": {}, \"devices_lost\": {}, \
                 \"device_loss_rate\": {:.4}, \"iterations\": {}, \"completed\": {}, \
                 \"completion_rate\": {:.4}, \"device_lost_events\": {}, \
                 \"failover_iteration\": {}, \"reshard_latency_s\": {:.6}, \
                 \"pre_loss_iters_per_s\": {:.4}, \"post_loss_iters_per_s\": {:.4}, \
                 \"loss_bitwise_identical_to_fault_free\": {}, \
                 \"per_device_allocs\": [{}], \"dead_devices\": [{}]}}",
                o.name,
                o.gpus,
                o.lost,
                o.lost as f64 / o.gpus as f64,
                o.iterations,
                o.completed,
                o.completion_rate(),
                o.device_lost_events,
                o.failover_iter
                    .map_or("null".to_string(), |i| i.to_string()),
                o.reshard_latency_s(),
                o.pre_loss_throughput(),
                o.post_loss_throughput(),
                o.losses == base_losses,
                allocs.join(", "),
                dead.join(", ")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"dataset\": \"cora\",\n  \"per_device_budget_bytes\": {budget},\n  \
         \"iterations\": {iters},\n  \"max_retries\": 8,\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    crate::output::write_artifact("BENCH_failover.json", &json, write_bench);
}
