//! Online-serving experiment, written to `BENCH_serving.json`.
//!
//! Drives a warmed-up [`Engine`] through a seeded Poisson request trace
//! with `serve_trace` — the same Prepare/Execute pipeline and bucket
//! scheduler as training, forward-only. Three measurements:
//!
//! 1. **Headline numbers** — throughput and the latency distribution
//!    (p50/p95/p99/max) under a tight device budget, chosen as 60 % of
//!    the single-dispatch footprint so the scheduler visibly splits
//!    coalesced batches to stay admitted.
//! 2. **Budget admission** — the peak simulated device memory must stay
//!    under the stated budget even though a roomy device would run each
//!    dispatch as one micro-batch.
//! 3. **Determinism** — the run is replayed and the per-request output
//!    digests compared; serving shares FaultPlan's discipline of seeded,
//!    wall-clock-free simulation, so the digests must match bitwise.

use crate::context::load_workload_with;
use crate::output::{mem, secs, Table};
use buffalo_core::serve::{serve_trace, RequestTrace, ServeConfig, ServeReport};
use buffalo_core::train::{Engine, TrainConfig};
use buffalo_graph::datasets::DatasetName;
use buffalo_memsim::{AggregatorKind, CostModel, DeviceMemory};

const WARMUP_ITERS: usize = 3;

fn light_config(w: &crate::context::Workload) -> TrainConfig {
    TrainConfig {
        shape: w.shape(32, AggregatorKind::Mean),
        fanouts: w.fanouts.clone(),
        lr: 0.01,
        seed: 17,
        parallelism: buffalo_par::Parallelism::auto(),
    }
}

/// Runs the serving experiment; with `write_bench` it also rewrites
/// `BENCH_serving.json`.
pub fn serving(quick: bool, write_bench: bool) {
    let w = load_workload_with(DatasetName::Cora, 256, vec![5, 10], 42);
    let cost = CostModel::rtx6000();

    // Warm the model with a few training iterations so served predictions
    // come from a trained parameterization, not the init.
    let mut engine = Engine::buffalo(light_config(&w), w.clustering);
    let warm_dev = DeviceMemory::with_gib(24.0);
    for _ in 0..WARMUP_ITERS {
        engine
            .train_iteration(&w.dataset, &w.batch, &warm_dev, &cost)
            .expect("warmup iteration");
    }

    let n = if quick { 128 } else { 512 };
    let trace =
        RequestTrace::poisson(n, 256.0, w.dataset.graph.num_nodes(), 7).expect("poisson trace");
    let cfg = ServeConfig::default();

    // Probe the roomy-device footprint, then serve under 60 % of it so the
    // bucket scheduler has to split dispatches for admission.
    let probe = DeviceMemory::with_gib(24.0);
    let wide =
        serve_trace(&engine, &w.dataset, &probe, &cost, &trace, &cfg).expect("roomy serve run");
    let budget = wide.peak_mem_bytes * 3 / 5;
    let run = |label: &str| -> ServeReport {
        let device = DeviceMemory::new(budget);
        serve_trace(&engine, &w.dataset, &device, &cost, &trace, &cfg)
            .unwrap_or_else(|e| panic!("{label} serve run: {e}"))
    };
    let report = run("budgeted");
    let replay = run("replay");
    let deterministic = report.output_digest == replay.output_digest
        && report.latency.p99.to_bits() == replay.latency.p99.to_bits();

    let mut t = Table::new(["measurement", "value"]);
    t.row([
        "requests served".to_string(),
        format!(
            "{} ({} batches, {} micro-batches)",
            report.requests.len(),
            report.num_batches,
            report.num_micro_batches
        ),
    ]);
    t.row([
        "device budget".to_string(),
        format!(
            "{} (peak {}, roomy peak {})",
            mem(report.budget_bytes),
            mem(report.peak_mem_bytes),
            mem(wide.peak_mem_bytes)
        ),
    ]);
    t.row([
        "under budget".to_string(),
        (report.peak_mem_bytes <= report.budget_bytes).to_string(),
    ]);
    t.row([
        "scheduler split dispatches".to_string(),
        (report.num_micro_batches > report.num_batches).to_string(),
    ]);
    t.row([
        "throughput".to_string(),
        format!(
            "{:.1} req/s over {}",
            report.throughput_rps,
            secs(report.span_seconds)
        ),
    ]);
    t.row([
        "latency p50/p95/p99/max".to_string(),
        format!(
            "{} / {} / {} / {}",
            secs(report.latency.p50),
            secs(report.latency.p95),
            secs(report.latency.p99),
            secs(report.latency.max)
        ),
    ]);
    t.row([
        "replay digest identical".to_string(),
        format!("{deterministic} ({:016x})", report.output_digest),
    ]);
    t.print();

    crate::output::write_artifact(
        "BENCH_serving.json",
        &report.to_json("rtx6000"),
        write_bench,
    );
}
