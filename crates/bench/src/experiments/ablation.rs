//! Ablation studies for the design decisions DESIGN.md calls out:
//! grouping policy, redundancy-aware vs linear estimation, and
//! output-layer vs non-output-layer partitioning.

use crate::context::load_workload;
use crate::output::{mem, Table};
use buffalo_blocks::{generate_blocks_fast, GenerateOptions};
use buffalo_bucketing::{
    closure_counts, degree_bucketing, detect_explosion, split_explosion_bucket, BucketEntry,
    ClosureScratch,
};
use buffalo_graph::datasets::DatasetName;
use buffalo_graph::NodeId;
use buffalo_memsim::estimate::{grouping_ratio, mem_from_counts, BucketStats};
use buffalo_memsim::{measure, AggregatorKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_entries(
    w: &crate::context::Workload,
    shape: &buffalo_memsim::GnnShape,
    split_k: usize,
) -> Vec<BucketEntry> {
    let base = degree_bucketing(&w.batch.graph, w.batch.num_seeds, w.fanouts[0]);
    let explosion = detect_explosion(&base, 2.0);
    let mut buckets = Vec::new();
    for (i, b) in base.iter().enumerate() {
        if Some(i) == explosion && split_k > 1 {
            buckets.extend(split_explosion_bucket(b, split_k));
        } else {
            buckets.push(b.clone());
        }
    }
    let mut scratch = ClosureScratch::default();
    buckets
        .into_iter()
        .map(|bucket| {
            let counts = closure_counts(
                &w.batch.graph,
                &bucket.nodes,
                shape.num_layers,
                &mut scratch,
            );
            let stats = BucketStats {
                degree: bucket.degree,
                num_output: bucket.volume(),
                num_input: counts.output_layer_inputs(),
            };
            let mem_estimate = mem_from_counts(&counts, shape);
            BucketEntry {
                bucket,
                stats,
                mem_estimate,
            }
        })
        .collect()
}

/// Places entries into `k` groups with one of three policies, returning
/// per-group discounted estimates.
///
/// * `greedy-desc` — Buffalo: sort descending, place into lightest group.
/// * `first-fit` — arrival order, place into the first group whose load
///   stays under the ideal share (classic first-fit with a capacity hint).
/// * `random` — place each bucket into a uniformly random group.
fn place(entries: &[BucketEntry], k: usize, clustering: f64, policy: &str) -> Vec<u64> {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    if policy == "greedy-desc" {
        order.sort_by_key(|&i| std::cmp::Reverse(entries[i].mem_estimate));
    }
    let total: u64 = entries.iter().map(|e| e.mem_estimate).sum();
    let share = total / k as u64 + 1;
    let mut rng = StdRng::seed_from_u64(99);
    let mut loads = vec![0u64; k];
    for idx in order {
        let contribution = (entries[idx].mem_estimate as f64
            * grouping_ratio(&entries[idx].stats, clustering)) as u64;
        let gi = match policy {
            "first-fit" => loads
                .iter()
                .position(|&l| l + contribution <= share)
                .unwrap_or_else(|| {
                    loads
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &l)| l)
                        .map(|(i, _)| i)
                        .unwrap()
                }),
            "random" => rng.gen_range(0..k),
            "greedy-desc" => loads
                .iter()
                .enumerate()
                .min_by_key(|&(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap(),
            other => panic!("unknown policy {other}"),
        };
        loads[gi] += contribution;
    }
    loads
}

/// Grouping-policy ablation: greedy-descending (Buffalo) vs first-fit vs
/// random placement — max group size and imbalance. Uses the coarse
/// bucket granularity (explosion split into `k/2` parts) so item sizes
/// vary, as they do when the scheduler first probes a small `K`.
pub fn grouping(quick: bool) {
    let w = load_workload(DatasetName::OgbnProducts, quick);
    let shape = w.shape(256, AggregatorKind::Lstm);
    let k = 4;
    let entries = build_entries(&w, &shape, 3 * k);
    let mut t = Table::new(["policy", "max group", "min group", "imbalance %"]);
    for policy in ["greedy-desc", "first-fit", "random"] {
        let loads = place(&entries, k, w.clustering, policy);
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        t.row([
            policy.into(),
            mem(max),
            mem(min),
            format!("{:.1}", 100.0 * (max - min) as f64 / max.max(1) as f64),
        ]);
    }
    t.print();
    println!(
        "(greedy-descending should dominate: smallest max group -> smallest K satisfies a budget)"
    );
}

/// Estimator ablation: redundancy-aware (Eq. 2) vs linear-sum group
/// estimates against the measured footprint of each group. Runs on the
/// Reddit stand-in, whose high clustering coefficient (≈0.6) activates
/// the `R_group < 1` discount that low-clustering graphs never trigger.
pub fn estimator(quick: bool) {
    let mut w = load_workload(DatasetName::Reddit, quick);
    // Re-sample with *community-ordered* seeds (consecutive ids group
    // whole communities): buckets then share most of their inputs with
    // their neighbors in the bucket, the regime where Eq. 1's discount is
    // live. Shuffled seeds scatter communities and the ratio caps at 1.
    let seeds: Vec<NodeId> = (0..w.batch.num_seeds as NodeId).collect();
    w.batch =
        buffalo_sampling::BatchSampler::new(w.fanouts.clone()).sample(&w.dataset.graph, &seeds, 7);
    let shape = w.shape(256, AggregatorKind::Lstm);
    let k = 4;
    let entries = build_entries(&w, &shape, 3 * k);
    // Greedy placement, tracking members per group.
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(entries[i].mem_estimate));
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut loads = vec![0u64; k];
    for idx in order {
        let gi = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap();
        groups[gi].push(idx);
        loads[gi] += (entries[idx].mem_estimate as f64
            * grouping_ratio(&entries[idx].stats, w.clustering)) as u64;
    }
    let mut t = Table::new([
        "group",
        "actual",
        "redundancy-aware est",
        "err %",
        "linear-sum est",
        "err %",
    ]);
    let (mut e_aware, mut e_linear) = (0.0f64, 0.0f64);
    for (gi, members) in groups.iter().enumerate() {
        let seeds: Vec<NodeId> = members
            .iter()
            .flat_map(|&i| entries[i].bucket.nodes.iter().copied())
            .collect();
        if seeds.is_empty() {
            continue;
        }
        let micro = w.batch.restrict_to_seeds(&seeds);
        let blocks = generate_blocks_fast(
            &micro.graph,
            micro.num_seeds,
            shape.num_layers,
            GenerateOptions::default(),
        );
        let actual = measure::training_memory(&blocks, &shape).total();
        let aware: u64 = members
            .iter()
            .map(|&i| {
                (entries[i].mem_estimate as f64 * grouping_ratio(&entries[i].stats, w.clustering))
                    as u64
            })
            .sum();
        let linear: u64 = members.iter().map(|&i| entries[i].mem_estimate).sum();
        let ea = 100.0 * (aware as f64 - actual as f64).abs() / actual as f64;
        let el = 100.0 * (linear as f64 - actual as f64).abs() / actual as f64;
        e_aware += ea;
        e_linear += el;
        t.row([
            gi.to_string(),
            mem(actual),
            mem(aware),
            format!("{ea:.1}"),
            mem(linear),
            format!("{el:.1}"),
        ]);
    }
    t.print();
    println!(
        "mean error: redundancy-aware {:.1}% vs linear {:.1}%",
        e_aware / k as f64,
        e_linear / k as f64
    );
    println!("(linear summing always over-predicts, wasting budget; the Eq. 1 discount");
    println!("engages under clustered seed orders and can overshoot into under-prediction —");
    println!("which is why BuffaloScheduler re-validates every group with exact closure");
    println!("counts before accepting a plan: see SchedulerOptions::validate_exact)");
}

/// Partition-layer ablation (§IV-B, Figure 8): partitioning at a
/// non-output layer leaves cross-partition dependencies that block
/// gradient accumulation; partitioning at the output layer leaves none.
pub fn layer(quick: bool) {
    let w = load_workload(DatasetName::OgbnArxiv, quick);
    let depth = w.fanouts.len();
    let k = 4;
    // Output-layer partitioning: restrict_to_seeds pulls the complete
    // dependency closure, so by construction zero dependencies are lost.
    let per = w.batch.num_seeds / k;
    let mut missing_output_layer = 0usize;
    let mut kept_nodes = 0usize;
    for g in 0..k {
        let seeds: Vec<NodeId> =
            ((g * per) as NodeId..((g + 1) * per).min(w.batch.num_seeds) as NodeId).collect();
        let micro = w.batch.restrict_to_seeds(&seeds);
        kept_nodes += micro.num_nodes();
        // Every sampled in-edge of every kept node within depth must be
        // present; count any that are not.
        for v in 0..micro.num_seeds as NodeId {
            missing_output_layer +=
                (w.batch.graph.degree(seeds[v as usize]) != micro.graph.degree(v)) as usize;
        }
    }
    // Non-output-layer partitioning: split the layer-1 frontier instead;
    // count layer-2 destinations whose layer-1 dependencies land in a
    // different partition (Figure 8's "missing dependencies").
    let frontier = &w.batch.layer_frontiers[1];
    let mut part_of = vec![usize::MAX; w.batch.num_nodes()];
    for (i, &v) in frontier.iter().enumerate() {
        part_of[v as usize] = i * k / frontier.len().max(1);
    }
    let mut missing_inner_layer = 0usize;
    for s in 0..w.batch.num_seeds as NodeId {
        let mut parts_seen = [false; 64];
        for &u in w.batch.graph.neighbors(s) {
            let p = part_of[u as usize];
            if p != usize::MAX {
                parts_seen[p.min(63)] = true;
            }
        }
        let spread = parts_seen.iter().filter(|&&x| x).count();
        if spread > 1 {
            // This output node depends on buckets in `spread` partitions:
            // all but one are missing at training time.
            missing_inner_layer += spread - 1;
        }
    }
    let mut t = Table::new(["partition layer", "missing dependencies", "note"]);
    t.row([
        format!("output (layer {depth})"),
        missing_output_layer.to_string(),
        "gradient accumulation valid".into(),
    ]);
    t.row([
        format!("non-output (layer {})", depth - 1),
        missing_inner_layer.to_string(),
        "blocks gradient accumulation".into(),
    ]);
    t.print();
    println!("(kept {kept_nodes} nodes across output-layer micro-batches; paper §IV-B)");
}

/// Pipelining ablation: double-buffered execution overlaps micro-batch
/// `i + 1`'s CPU preparation with micro-batch `i`'s device work — the
/// optimization the paper's related work (§II-B) applies and Buffalo
/// composes with, because its plan is known up front.
pub fn pipeline(quick: bool) {
    use crate::output::secs;
    use buffalo_core::sim::{simulate_iteration, SimContext, Strategy};
    use buffalo_memsim::{CostModel, DeviceMemory};
    let cost = CostModel::rtx6000();
    let mut t = Table::new(["dataset", "K", "serial", "pipelined", "saved %"]);
    for name in [
        DatasetName::OgbnArxiv,
        DatasetName::OgbnProducts,
        DatasetName::OgbnPapers,
    ] {
        let w = load_workload(name, quick);
        let shape = w.shape(128, AggregatorKind::Lstm);
        let ctx = SimContext {
            shape: &shape,
            fanouts: &w.fanouts,
            clustering: w.clustering,
            original: &w.dataset.graph,
        };
        let unlimited = DeviceMemory::new(u64::MAX);
        let whole = simulate_iteration(&w.batch, ctx, Strategy::Full, &unlimited, &cost)
            .expect("unlimited device");
        let budget = DeviceMemory::new((whole.peak_mem_bytes / 8).max(1) * 13 / 10);
        match simulate_iteration(&w.batch, ctx, Strategy::Buffalo, &budget, &cost) {
            Ok(rep) => {
                let serial = rep.phases.total();
                let pipelined = rep.pipelined_total();
                t.row([
                    name.to_string(),
                    rep.num_micro_batches.to_string(),
                    secs(serial),
                    secs(pipelined),
                    format!("{:.1}", 100.0 * (serial - pipelined) / serial),
                ]);
            }
            Err(e) => {
                t.row([
                    name.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("{e}"),
                ]);
            }
        }
    }
    t.print();
    println!("(the schedule exists before the first micro-batch runs, so preparation");
    println!("of micro-batch i+1 can hide behind device work of micro-batch i)");
}
