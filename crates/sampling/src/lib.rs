//! Fanout neighbor sampling and batch construction.
//!
//! GNN mini-batch training samples an `L`-hop neighborhood around a set of
//! *seed* (output) nodes, with a per-layer *fanout* cap on the number of
//! neighbors kept per node. The result is a [`Batch`] — the paper's
//! "sampling subgraph" `G` that Algorithms 1–3 consume.
//!
//! Sampling layers are ordered from the output layer inward: `fanouts[0]`
//! caps the direct neighbors of the seeds (layer `L`), `fanouts[1]` the
//! neighbors-of-neighbors, and so on. The paper's evaluation uses fanouts
//! `(10, 25)` (written "cut-off 10,25" in Table III).
//!
//! # Examples
//!
//! ```
//! use buffalo_graph::generators;
//! use buffalo_sampling::BatchSampler;
//!
//! let g = generators::barabasi_albert(1_000, 5, 0.3, 7).unwrap();
//! let sampler = BatchSampler::new(vec![10, 25]);
//! let batch = sampler.sample(&g, &[0, 1, 2, 3], 42);
//! assert_eq!(batch.num_seeds, 4);
//! assert!(batch.num_nodes() >= 4);
//! // Every seed's sampled in-degree respects the layer-L fanout.
//! for s in 0..4u32 {
//!     assert!(batch.graph.degree(s) <= 10);
//! }
//! ```

#![warn(missing_docs)]

use buffalo_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A sampled training batch: the `L`-hop sampled subgraph around a seed set.
///
/// Nodes are relabeled to local ids `0..num_nodes()`; the seeds occupy
/// `0..num_seeds` in their original order, followed by sampled neighbors in
/// discovery order (layer by layer). The local graph stores only the
/// *sampled* edges, directed so that row `v` holds the in-neighbors whose
/// embeddings aggregate into `v`.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Local-id graph over the sampled nodes (in-neighbor rows).
    pub graph: CsrGraph,
    /// Maps local id → original graph id.
    pub global_ids: Vec<NodeId>,
    /// The first `num_seeds` local ids are the output nodes.
    pub num_seeds: usize,
    /// Per-layer fanouts, output layer first.
    pub fanouts: Vec<usize>,
    /// For each sampling layer, the local ids first discovered at that
    /// layer. `layer_frontiers[0]` is the seed set itself.
    pub layer_frontiers: Vec<Vec<NodeId>>,
}

impl Batch {
    /// Number of nodes in the batch (seeds + sampled neighbors).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of sampled (directed) edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Aggregation depth `L` this batch was sampled for.
    pub fn depth(&self) -> usize {
        self.fanouts.len()
    }

    /// Local ids of the output (seed) nodes.
    pub fn seed_locals(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_seeds as NodeId
    }

    /// Restricts the batch to a subset of its seeds, re-sampling nothing:
    /// the result contains the chosen seeds plus every batch node reachable
    /// from them through sampled in-edges within `depth()` hops. This is the
    /// primitive micro-batch extraction used by output-layer partitioning.
    ///
    /// The relabeling is **order-preserving**: kept seeds are sorted, then
    /// kept non-seeds are sorted, so the parent→child id mapping is
    /// monotonic and every adjacency row keeps its neighbor order. This
    /// makes micro-batch training bitwise-deterministic even for
    /// order-sensitive aggregators (the LSTM processes each node's
    /// neighbors as a sequence — permuting it would silently change the
    /// computation).
    ///
    /// # Panics
    ///
    /// Panics if any entry of `seed_subset` is not a seed local id.
    pub fn restrict_to_seeds(&self, seed_subset: &[NodeId]) -> Batch {
        for &s in seed_subset {
            assert!(
                (s as usize) < self.num_seeds,
                "local id {s} is not a seed (num_seeds={})",
                self.num_seeds
            );
        }
        // BFS through in-edges, depth-bounded.
        let mut seen = vec![false; self.num_nodes()];
        let mut frontier: Vec<NodeId> = seed_subset.to_vec();
        for &s in seed_subset {
            seen[s as usize] = true;
        }
        let mut tail: Vec<NodeId> = Vec::new();
        let mut frontiers = vec![seed_subset.to_vec()];
        for _ in 0..self.depth() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &u in self.graph.neighbors(v) {
                    if !seen[u as usize] {
                        seen[u as usize] = true;
                        next.push(u);
                        tail.push(u);
                    }
                }
            }
            frontiers.push(next.clone());
            frontier = next;
        }
        // Order-preserving relabeling: seeds (all < num_seeds) sorted,
        // then discovered nodes sorted — a monotonic map from parent ids.
        let mut keep: Vec<NodeId> = seed_subset.to_vec();
        keep.sort_unstable();
        tail.sort_unstable();
        keep.extend_from_slice(&tail);
        let (sub, _) = self.graph.induced_subgraph(&keep);
        let mut remap = vec![NodeId::MAX; self.num_nodes()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old as usize] = new as NodeId;
        }
        Batch {
            graph: sub,
            global_ids: keep.iter().map(|&l| self.global_ids[l as usize]).collect(),
            num_seeds: seed_subset.len(),
            fanouts: self.fanouts.clone(),
            layer_frontiers: frontiers
                .into_iter()
                .map(|f| f.into_iter().map(|v| remap[v as usize]).collect())
                .collect(),
        }
    }
}

/// Samples `L`-hop neighborhoods with per-layer fanout caps.
#[derive(Debug, Clone)]
pub struct BatchSampler {
    fanouts: Vec<usize>,
}

impl BatchSampler {
    /// Creates a sampler with the given per-layer fanouts (output layer
    /// first). The paper's default configuration is `vec![10, 25]`.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty or contains a zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one layer");
        assert!(fanouts.iter().all(|&f| f > 0), "fanouts must be positive");
        BatchSampler { fanouts }
    }

    /// The configured fanouts.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Samples a [`Batch`] around `seeds` from `graph`.
    ///
    /// Deterministic in `(graph, seeds, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, contains duplicates, or references nodes
    /// outside `graph`.
    pub fn sample(&self, graph: &CsrGraph, seeds: &[NodeId], seed: u64) -> Batch {
        assert!(!seeds.is_empty(), "seed set must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        // Ordered map, not a hash map: `local_of` is only ever *probed*
        // (never iterated), but the nondet-iteration lint bans hash
        // containers from sampling wholesale so a future drain cannot
        // silently order the batch by hasher state.
        let mut local_of: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut global_ids: Vec<NodeId> = Vec::with_capacity(seeds.len() * 4);
        for &s in seeds {
            assert!((s as usize) < graph.num_nodes(), "seed {s} out of range");
            let prev = local_of.insert(s, global_ids.len() as NodeId);
            assert!(prev.is_none(), "duplicate seed {s}");
            global_ids.push(s);
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new(); // (src=in-neighbor, dst)
        let mut frontier: Vec<NodeId> = seeds.to_vec(); // original ids
        let mut layer_frontiers: Vec<Vec<NodeId>> = vec![(0..seeds.len() as NodeId).collect()];
        for &fanout in &self.fanouts {
            let mut next_frontier: Vec<NodeId> = Vec::new();
            let mut next_locals: Vec<NodeId> = Vec::new();
            for &v in &frontier {
                let dst_local = local_of[&v];
                let nb = graph.neighbors(v);
                for u in sample_distinct(nb, fanout, &mut rng) {
                    let src_local = *local_of.entry(u).or_insert_with(|| {
                        let l = global_ids.len() as NodeId;
                        global_ids.push(u);
                        next_frontier.push(u);
                        next_locals.push(l);
                        l
                    });
                    edges.push((src_local, dst_local));
                }
            }
            layer_frontiers.push(next_locals);
            frontier = next_frontier;
        }
        let mut b = GraphBuilder::with_capacity(global_ids.len(), edges.len());
        b.extend_edges(edges);
        Batch {
            graph: b.build_directed(),
            global_ids,
            num_seeds: seeds.len(),
            fanouts: self.fanouts.clone(),
            layer_frontiers,
        }
    }

    /// Samples a [`Batch`] whose per-seed neighborhoods are **isolated**:
    /// each seed's `L`-hop closure is sampled independently (seeded by
    /// `(seed, node id)`) and the closures are merged as disjoint
    /// components — a node serving two seeds appears once *per seed*, with
    /// its own sampled in-edges per copy.
    ///
    /// The property this buys is **composition independence**: the
    /// component built for seed `s` is an exact relabeled copy of
    /// `sample(graph, &[s], derive)` regardless of which other seeds share
    /// the batch. [`sample`](Self::sample) cannot offer this — it draws
    /// from one shared RNG stream and dedups discovered nodes, so a
    /// node's sampled neighborhood (and hence a seed's prediction) shifts
    /// with its batch-mates. Online serving uses this method so that the
    /// answer to a query never depends on which other queries were
    /// coalesced with it — batch boundaries can then move freely (load,
    /// faults, re-splits) without moving a single output bit.
    ///
    /// The price is the lost cross-seed dedup: the merged batch is larger
    /// than [`sample`](Self::sample)'s by the overlap between closures.
    ///
    /// Deterministic in `(graph, seeds, seed)` — and, per component, in
    /// `(graph, seed, one node)`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty, contains duplicates, or references
    /// nodes outside `graph`.
    pub fn sample_isolated(&self, graph: &CsrGraph, seeds: &[NodeId], seed: u64) -> Batch {
        assert!(!seeds.is_empty(), "seed set must be non-empty");
        let parts: Vec<Batch> = seeds
            .iter()
            .map(|&s| self.sample(graph, &[s], per_seed_stream(seed, s)))
            .collect();
        for w in 0..seeds.len() {
            for v in (w + 1)..seeds.len() {
                assert!(seeds[w] != seeds[v], "duplicate seed {}", seeds[w]);
            }
        }
        let k = seeds.len();
        let total_nodes: usize = parts.iter().map(Batch::num_nodes).sum();
        let total_edges: usize = parts.iter().map(Batch::num_edges).sum();
        // Merged local ids: all seeds first (part i's seed becomes local
        // i), then each part's non-seed nodes in part order. Within a
        // part the relabeling is monotonic, so every adjacency row keeps
        // its neighbor order — each component stays a bitwise-exact copy
        // of the standalone single-seed batch.
        let mut global_ids: Vec<NodeId> = Vec::with_capacity(total_nodes);
        global_ids.extend_from_slice(seeds);
        let mut bases: Vec<NodeId> = Vec::with_capacity(k);
        let mut next = k as NodeId;
        for p in &parts {
            bases.push(next);
            global_ids.extend_from_slice(&p.global_ids[1..]);
            next += (p.num_nodes() - 1) as NodeId;
        }
        let relabel = |i: usize, l: NodeId| -> NodeId {
            if l == 0 {
                i as NodeId
            } else {
                bases[i] + l - 1
            }
        };
        let mut b = GraphBuilder::with_capacity(total_nodes, total_edges);
        for (i, p) in parts.iter().enumerate() {
            for dst in p.graph.node_ids() {
                for &src in p.graph.neighbors(dst) {
                    b.add_edge(relabel(i, src), relabel(i, dst));
                }
            }
        }
        let mut layer_frontiers: Vec<Vec<NodeId>> = vec![(0..k as NodeId).collect()];
        for layer in 1..=self.fanouts.len() {
            let mut front: Vec<NodeId> = Vec::new();
            for (i, p) in parts.iter().enumerate() {
                if let Some(f) = p.layer_frontiers.get(layer) {
                    front.extend(f.iter().map(|&l| relabel(i, l)));
                }
            }
            layer_frontiers.push(front);
        }
        Batch {
            graph: b.build_directed(),
            global_ids,
            num_seeds: k,
            fanouts: self.fanouts.clone(),
            layer_frontiers,
        }
    }
}

/// Derives the independent RNG stream for one seed node: a SplitMix64
/// finalizer over `(seed, node)` so nearby node ids decorrelate.
fn per_seed_stream(seed: u64, node: NodeId) -> u64 {
    let mut z = seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples up to `k` distinct elements from `pool` (all of them if
/// `pool.len() <= k`), preserving no particular order. Uses Floyd's
/// algorithm over indices to avoid copying large neighbor lists.
fn sample_distinct(pool: &[NodeId], k: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let n = pool.len();
    if n <= k {
        return pool.to_vec();
    }
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if picked.contains(&t) {
            picked.push(j);
        } else {
            picked.push(t);
        }
    }
    picked.into_iter().map(|i| pool[i]).collect()
}

/// Iterates over a shuffled seed set in fixed-size chunks, yielding the
/// seed slice for each mini-batch of an epoch.
#[derive(Debug, Clone)]
pub struct SeedBatches {
    order: Vec<NodeId>,
    batch_size: usize,
}

impl SeedBatches {
    /// Shuffles `0..num_nodes` with `seed` and chunks into `batch_size`
    /// groups (the last group may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn new(num_nodes: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        let mut order: Vec<NodeId> = (0..num_nodes as NodeId).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        SeedBatches { order, batch_size }
    }

    /// Number of batches per epoch.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// The seed slice for batch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_batches()`.
    pub fn batch(&self, i: usize) -> &[NodeId] {
        let start = i * self.batch_size;
        assert!(start < self.order.len(), "batch index out of range");
        let end = (start + self.batch_size).min(self.order.len());
        &self.order[start..end]
    }

    /// Iterator over all batches of the epoch.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.num_batches()).map(move |i| self.batch(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::generators;
    use proptest::prelude::*;

    fn test_graph() -> CsrGraph {
        generators::barabasi_albert(500, 6, 0.4, 11).unwrap()
    }

    #[test]
    fn fanout_caps_seed_degree() {
        let g = test_graph();
        let batch = BatchSampler::new(vec![5, 3]).sample(&g, &[0, 1, 2], 1);
        for s in batch.seed_locals() {
            assert!(batch.graph.degree(s) <= 5);
        }
    }

    #[test]
    fn seeds_come_first_and_map_back() {
        let g = test_graph();
        let seeds = [10u32, 20, 30];
        let batch = BatchSampler::new(vec![4]).sample(&g, &seeds, 2);
        assert_eq!(&batch.global_ids[..3], &seeds);
        assert_eq!(batch.num_seeds, 3);
    }

    #[test]
    fn sampled_edges_exist_in_original_graph() {
        let g = test_graph();
        let batch = BatchSampler::new(vec![6, 4]).sample(&g, &[1, 2, 3, 4], 3);
        for v in batch.graph.node_ids() {
            let gv = batch.global_ids[v as usize];
            for &u in batch.graph.neighbors(v) {
                let gu = batch.global_ids[u as usize];
                assert!(
                    g.has_edge(gu, gv) || g.has_edge(gv, gu),
                    "sampled edge ({gu},{gv}) missing in original"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = test_graph();
        let s = BatchSampler::new(vec![5, 5]);
        let a = s.sample(&g, &[0, 9, 17], 99);
        let b = s.sample(&g, &[0, 9, 17], 99);
        assert_eq!(a.global_ids, b.global_ids);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn isolated_components_match_standalone_samples() {
        let g = test_graph();
        let s = BatchSampler::new(vec![5, 3]);
        let seeds = [0u32, 9, 17, 250];
        let merged = s.sample_isolated(&g, &seeds, 77);
        assert_eq!(merged.num_seeds, seeds.len());
        assert_eq!(&merged.global_ids[..seeds.len()], &seeds);
        for (i, &node) in seeds.iter().enumerate() {
            // The i-th component of the merged batch, restricted back to
            // seed i alone, must be a bitwise copy of sampling that seed
            // standalone with its derived stream.
            let alone = s.sample(&g, &[node], per_seed_stream(77, node));
            let part = merged.restrict_to_seeds(&[i as NodeId]);
            assert_eq!(part.global_ids, alone.global_ids, "seed {node}");
            assert_eq!(part.graph, alone.graph, "seed {node}");
            assert_eq!(part.layer_frontiers.len(), alone.layer_frontiers.len());
            for (pf, af) in part.layer_frontiers.iter().zip(&alone.layer_frontiers) {
                let pg: Vec<NodeId> = pf.iter().map(|&l| part.global_ids[l as usize]).collect();
                let ag: Vec<NodeId> = af.iter().map(|&l| alone.global_ids[l as usize]).collect();
                assert_eq!(pg, ag, "seed {node} frontier globals");
            }
        }
    }

    #[test]
    fn isolated_is_composition_independent() {
        let g = test_graph();
        let s = BatchSampler::new(vec![4, 4]);
        // The same seed batched with different companions keeps the exact
        // same sampled closure — the property online serving relies on.
        let with_a = s.sample_isolated(&g, &[42, 7, 300], 5);
        let with_b = s.sample_isolated(&g, &[123, 42], 5);
        let a = with_a.restrict_to_seeds(&[0]);
        let b = with_b.restrict_to_seeds(&[1]);
        assert_eq!(a.global_ids, b.global_ids);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn isolated_components_are_disjoint() {
        let g = test_graph();
        let s = BatchSampler::new(vec![6, 4]);
        let merged = s.sample_isolated(&g, &[1, 2, 3], 9);
        // No sampled edge crosses components: every node reachable from
        // seed i is only reachable from seed i.
        for i in 0..3u32 {
            let part = merged.restrict_to_seeds(&[i]);
            for other in 0..3u32 {
                if other == i {
                    continue;
                }
                let o = merged.restrict_to_seeds(&[other]);
                // Component node *local* sets in the merged batch are
                // disjoint even when global ids overlap.
                assert_eq!(part.num_seeds, 1);
                assert_eq!(o.num_seeds, 1);
            }
        }
        let total: usize = (0..3u32)
            .map(|i| merged.restrict_to_seeds(&[i]).num_nodes())
            .sum();
        assert_eq!(
            total,
            merged.num_nodes(),
            "components must partition the batch"
        );
    }

    #[test]
    fn isolated_is_deterministic() {
        let g = test_graph();
        let s = BatchSampler::new(vec![5, 5]);
        let a = s.sample_isolated(&g, &[0, 9, 17], 99);
        let b = s.sample_isolated(&g, &[0, 9, 17], 99);
        assert_eq!(a.global_ids, b.global_ids);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.layer_frontiers, b.layer_frontiers);
    }

    #[test]
    #[should_panic(expected = "duplicate seed")]
    fn isolated_rejects_duplicate_seeds() {
        let g = test_graph();
        let _ = BatchSampler::new(vec![3]).sample_isolated(&g, &[4, 4], 0);
    }

    #[test]
    fn depth_one_only_samples_direct_neighbors() {
        let g = test_graph();
        let batch = BatchSampler::new(vec![1000]).sample(&g, &[7], 5);
        // All non-seed nodes must be real neighbors of node 7.
        for l in 1..batch.num_nodes() as NodeId {
            let orig = batch.global_ids[l as usize];
            assert!(g.has_edge(orig, 7));
        }
        assert_eq!(batch.graph.degree(0), g.degree(7));
    }

    #[test]
    fn layer_frontiers_partition_nodes() {
        let g = test_graph();
        let batch = BatchSampler::new(vec![5, 5]).sample(&g, &[0, 1], 6);
        let total: usize = batch.layer_frontiers.iter().map(Vec::len).sum();
        assert_eq!(total, batch.num_nodes());
        assert_eq!(batch.layer_frontiers[0], vec![0, 1]);
    }

    #[test]
    fn restrict_to_seeds_keeps_reachable_closure() {
        let g = test_graph();
        let batch = BatchSampler::new(vec![4, 4]).sample(&g, &[0, 1, 2, 3], 7);
        let micro = batch.restrict_to_seeds(&[0, 2]);
        assert_eq!(micro.num_seeds, 2);
        assert_eq!(micro.global_ids[0], batch.global_ids[0]);
        assert_eq!(micro.global_ids[1], batch.global_ids[2]);
        assert!(micro.num_nodes() <= batch.num_nodes());
        // Seed in-degrees are preserved: the restriction keeps every
        // sampled in-neighbor of a kept seed.
        assert_eq!(micro.graph.degree(0), batch.graph.degree(0));
        assert_eq!(micro.graph.degree(1), batch.graph.degree(2));
    }

    #[test]
    fn restriction_preserves_neighbor_order() {
        // Order-sensitive aggregators (LSTM) require that a kept node's
        // neighbor sequence is identical in the micro-batch.
        let g = test_graph();
        let seeds: Vec<NodeId> = (0..30).collect();
        let batch = BatchSampler::new(vec![6, 4]).sample(&g, &seeds, 13);
        // Deliberately unsorted subset: the restriction must sort it.
        let micro = batch.restrict_to_seeds(&[17, 3, 25, 8]);
        assert_eq!(
            &micro.global_ids[..4],
            &[
                batch.global_ids[3],
                batch.global_ids[8],
                batch.global_ids[17],
                batch.global_ids[25]
            ]
        );
        // Each kept seed's neighbor row maps to the same global sequence.
        for &(child, parent) in [(0u32, 3u32), (1, 8), (2, 17), (3, 25)].iter() {
            let child_seq: Vec<NodeId> = micro
                .graph
                .neighbors(child)
                .iter()
                .map(|&u| micro.global_ids[u as usize])
                .collect();
            let parent_seq: Vec<NodeId> = batch
                .graph
                .neighbors(parent)
                .iter()
                .map(|&u| batch.global_ids[u as usize])
                .collect();
            assert_eq!(child_seq, parent_seq, "seed {parent} row reordered");
        }
    }

    #[test]
    #[should_panic(expected = "not a seed")]
    fn restrict_rejects_non_seed() {
        let g = test_graph();
        let batch = BatchSampler::new(vec![2]).sample(&g, &[0], 1);
        let _ = batch.restrict_to_seeds(&[(batch.num_nodes() - 1) as NodeId]);
    }

    #[test]
    fn seed_batches_cover_everything_once() {
        let sb = SeedBatches::new(103, 10, 4);
        assert_eq!(sb.num_batches(), 11);
        let mut seen = [false; 103];
        for b in sb.iter() {
            for &v in b {
                assert!(!seen[v as usize], "node {v} appears twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn seed_batches_shuffle_depends_on_seed() {
        let a = SeedBatches::new(50, 50, 1);
        let b = SeedBatches::new(50, 50, 2);
        assert_ne!(a.batch(0), b.batch(0));
    }

    proptest! {
        /// sample_distinct returns distinct in-pool elements, size = min(k, n).
        #[test]
        fn sample_distinct_properties(pool_size in 0usize..60, k in 0usize..30, seed in 0u64..500) {
            let pool: Vec<NodeId> = (0..pool_size as NodeId).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let got = sample_distinct(&pool, k, &mut rng);
            prop_assert_eq!(got.len(), k.min(pool_size));
            let mut s = got.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), got.len(), "duplicates in sample");
            prop_assert!(got.iter().all(|v| pool.contains(v)));
        }

        /// Batches never contain a node twice and all edges respect fanout caps per layer.
        #[test]
        fn batch_node_uniqueness(seed in 0u64..50) {
            let g = generators::barabasi_albert(200, 4, 0.2, 3).unwrap();
            let batch = BatchSampler::new(vec![3, 3]).sample(&g, &[0, 5, 9], seed);
            let mut ids = batch.global_ids.clone();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), batch.global_ids.len());
        }
    }
}
