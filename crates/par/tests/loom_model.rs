//! Model tests of the pool's handoff protocol under loom's instrumented
//! scheduler. Compiled only with `RUSTFLAGS="--cfg loom"`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p buffalo-par --test loom_model
//! ```
//!
//! Each test wraps a complete pool lifecycle in `loom::model`, which
//! re-executes it under many schedules with perturbation injected at every
//! lock/wait/atomic the pool performs. The properties checked are the ones
//! the `unsafe` lifetime erasure in `Pool::run` rests on:
//!
//! 1. `run` returns only after every submitted task has executed — no
//!    borrowed closure outlives the caller's frame (the scoped guarantee).
//! 2. Every task runs exactly once, whether drained by a worker or stolen
//!    by the submitting caller.
//! 3. `Drop` wakes parked workers and joins them — shutdown never hangs
//!    and never leaks a thread still holding erased borrows.
#![cfg(loom)]

use buffalo_par::{Pool, Task};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Spawn/steal/join: tasks borrowing the caller's stack complete exactly
/// once before `run` returns, across worker execution and caller stealing.
#[test]
fn handoff_runs_every_borrowed_task_exactly_once() {
    loom::model(|| {
        let pool = Pool::new();
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        let tasks: Vec<Task<'_>> = hits
            .iter()
            .map(|slot| -> Task<'_> {
                Box::new(move || {
                    slot.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run(tasks, 3);
        // The scoped guarantee: by the time `run` returns, every borrow
        // has been used exactly once and never again.
        for slot in &hits {
            assert_eq!(slot.load(Ordering::SeqCst), 1);
        }
        // Drop joins the workers; a schedule that loses the shutdown
        // wakeup would hang the model here.
    });
}

/// Two back-to-back `run` calls reuse persistent workers: the second
/// batch's tasks must not race the first batch's latch.
#[test]
fn sequential_runs_share_workers_without_cross_talk() {
    loom::model(|| {
        let pool = Pool::new();
        for round in 0..2usize {
            let counter = AtomicUsize::new(0);
            let tasks: Vec<Task<'_>> = (0..4)
                .map(|_| -> Task<'_> {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            pool.run(tasks, 3);
            assert_eq!(counter.load(Ordering::SeqCst), 4, "round {round}");
        }
    });
}

/// Concurrent submitters: two loom threads drive the same pool at once,
/// so callers drain each other's queued tasks. Each submitter's latch
/// must still only trip when its *own* tasks are done.
#[test]
fn concurrent_submitters_steal_harmlessly() {
    loom::model(|| {
        use loom::sync::Arc;
        let pool = Arc::new(Pool::new());
        let counts: Arc<[AtomicUsize; 2]> = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
        let mut handles = Vec::new();
        for who in 0..2usize {
            let pool = Arc::clone(&pool);
            let counts = Arc::clone(&counts);
            handles.push(loom::thread::spawn(move || {
                let tasks: Vec<Task<'_>> = (0..3)
                    .map(|_| -> Task<'_> {
                        let counts = &counts;
                        Box::new(move || {
                            counts[who].fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                pool.run(tasks, 2);
                // The scoped guarantee held for *this* submitter.
                assert_eq!(counts[who].load(Ordering::SeqCst), 3);
            }));
        }
        for h in handles {
            h.join().expect("submitter panicked");
        }
    });
}
