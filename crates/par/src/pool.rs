//! The persistent scoped worker pool and its data-parallel helpers.

use crate::config::Parallelism;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

// Under `--cfg loom` every synchronization primitive the pool touches is
// swapped for loom's instrumented equivalent, so the `tests/loom_model.rs`
// model test explores the handoff protocol (submit → worker wake → steal →
// latch → join) under many schedules. Production builds compile the exact
// std types as before.
#[cfg(loom)]
use loom::{
    sync::atomic::{AtomicBool, Ordering},
    sync::{Arc, Condvar, Mutex, MutexGuard},
    thread,
};
#[cfg(not(loom))]
use std::{
    sync::atomic::{AtomicBool, Ordering},
    sync::{Arc, Condvar, Mutex, MutexGuard},
    thread,
};

use std::sync::{OnceLock, PoisonError};

/// Hard cap on pool worker threads, a guard against absurd `--threads`
/// values (the caller thread always participates on top of these).
const MAX_WORKERS: usize = 64;

/// A borrowed task as submitted by callers.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: VecDeque<StaticTask>,
    shutdown: bool,
}

/// Locks `m`, recovering the guarded data from a poisoned lock. Pool
/// tasks run under `catch_unwind`, so a poisoned mutex can only mean a
/// thread died inside one of the pool's own short critical sections —
/// every one a counter/flag/queue update that is valid at every
/// intermediate state. Recovering keeps the pool joinable from the
/// engine's failover ladder instead of cascading a secondary panic.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals workers that tasks arrived (or shutdown began).
    available: Condvar,
}

/// Completion latch for one [`Pool::run`] call.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn complete_one(&self) {
        let mut left = lock_unpoisoned(&self.remaining);
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *lock_unpoisoned(&self.remaining) == 0
    }

    fn wait(&self) {
        let mut left = lock_unpoisoned(&self.remaining);
        while *left > 0 {
            left = self.done.wait(left).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A persistent worker pool executing borrowed closures.
///
/// Workers are spawned lazily, grow on demand up to the requested
/// concurrency (capped at `MAX_WORKERS`), and persist across calls — no
/// per-kernel thread spawns. [`run`](Self::run) gives the scoped-thread
/// guarantee: it returns only after every submitted task has finished, so
/// tasks may borrow data owned by the caller's stack frame.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl Pool {
    /// An empty pool; workers spawn on first use.
    pub fn new() -> Self {
        Pool {
            shared: Arc::new(Shared {
                queue: Mutex::new(Queue {
                    tasks: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Current worker-thread count (excluding callers).
    pub fn num_workers(&self) -> usize {
        lock_unpoisoned(&self.workers).len()
    }

    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(MAX_WORKERS);
        let mut workers = lock_unpoisoned(&self.workers);
        while workers.len() < wanted {
            let shared = Arc::clone(&self.shared);
            let name = format!("buffalo-par-{}", workers.len());
            match thread::Builder::new()
                .name(name)
                .spawn(move || worker_loop(&shared))
            {
                Ok(handle) => workers.push(handle),
                // Spawn failure (thread-resource exhaustion) degrades
                // concurrency, never correctness: `run` always drains the
                // queue on the calling thread, so fewer workers only slow
                // things down.
                Err(_) => break,
            }
        }
    }

    /// Runs every task to completion on up to `threads - 1` pool workers
    /// plus the calling thread, which participates by draining the queue.
    /// Blocks until all tasks have finished — the scoped guarantee that
    /// lets tasks borrow from the caller.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked (after all tasks have completed, so
    /// borrowed data is never observed mid-write by the unwinder).
    pub fn run<'scope>(&self, tasks: Vec<Task<'scope>>, threads: usize) {
        if tasks.is_empty() {
            return;
        }
        if threads <= 1 || tasks.len() == 1 {
            for task in tasks {
                task();
            }
            return;
        }
        self.ensure_workers(threads - 1);
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut queue = lock_unpoisoned(&self.shared.queue);
            for task in tasks {
                let latch = Arc::clone(&latch);
                let wrapped: Task<'scope> = Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(task)).is_err() {
                        latch.panicked.store(true, Ordering::SeqCst);
                    }
                    latch.complete_one();
                });
                // SAFETY: `run` does not return until the latch has counted
                // every task complete, so all borrows inside `wrapped`
                // outlive its execution; the lifetime erasure is therefore
                // sound (the same argument `std::thread::scope` makes).
                let wrapped: StaticTask =
                    unsafe { std::mem::transmute::<Task<'scope>, StaticTask>(wrapped) };
                queue.tasks.push_back(wrapped);
            }
        }
        self.shared.available.notify_all();
        // Caller participation: drain tasks (ours or a concurrent run's)
        // until our latch trips. When the queue is momentarily empty, all
        // our unfinished tasks are running on other threads, so blocking on
        // the latch cannot deadlock.
        while !latch.is_done() {
            let task = lock_unpoisoned(&self.shared.queue).tasks.pop_front();
            match task {
                Some(task) => task(),
                None => latch.wait(),
            }
        }
        if latch.panicked.load(Ordering::SeqCst) {
            // lint:allow(panic-reachability): deliberate re-raise of a pool task's panic, deferred until every task has completed so borrowed data is quiescent (chain: evaluate → SageLayer::forward → Tensor::gather_rows → parallel_rows → Pool::run); the engine's device-loss ladder catches it at the step boundary
            panic!("buffalo-par: a pool task panicked");
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        lock_unpoisoned(&self.shared.queue).shutdown = true;
        self.shared.available.notify_all();
        for worker in lock_unpoisoned(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break task;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        task();
    }
}

/// The shared process-wide pool every kernel dispatches to, so one
/// `--threads` setting governs matmul, aggregation, gather, and block
/// generation alike.
pub fn global_pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::new)
}

/// Runs borrowed tasks on the [`global_pool`] with `threads`-way
/// concurrency (serially when `threads <= 1`).
pub fn run_tasks(tasks: Vec<Task<'_>>, threads: usize) {
    global_pool().run(tasks, threads);
}

/// Splits `0..n` into one contiguous range per effective thread and runs
/// `f` on each. Falls back to a single serial call below the
/// [`Parallelism::min_parallel_rows`] threshold.
pub fn parallel_for<F>(n: usize, par: &Parallelism, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = par.effective_threads(n);
    if threads <= 1 {
        f(0..n);
        return;
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut tasks: Vec<Task<'_>> = Vec::with_capacity(threads);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        tasks.push(Box::new(move || f(start..end)));
        start = end;
    }
    global_pool().run(tasks, threads);
}

/// Splits a row-major `rows × cols` buffer into one contiguous row-chunk
/// per effective thread and runs `f(first_row, chunk)` on each — the
/// disjoint-output-row primitive behind every parallel kernel.
pub fn parallel_rows<F>(data: &mut [f32], cols: usize, par: &Parallelism, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if data.is_empty() || cols == 0 {
        return;
    }
    let rows = data.len() / cols;
    let threads = par.effective_threads(rows);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let chunk_rows = rows.div_ceil(threads);
    let f = &f;
    let tasks: Vec<Task<'_>> = data
        .chunks_mut(chunk_rows * cols)
        .enumerate()
        .map(|(ci, chunk)| -> Task<'_> { Box::new(move || f(ci * chunk_rows, chunk)) })
        .collect();
    global_pool().run(tasks, threads);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn par(threads: usize) -> Parallelism {
        Parallelism {
            threads,
            min_parallel_rows: 1,
            ..Parallelism::auto()
        }
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        for threads in [1, 2, 4, 8] {
            let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(1000, &par(threads), |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_rows_chunks_are_disjoint_and_aligned() {
        let (rows, cols) = (103, 7);
        let mut data = vec![0.0f32; rows * cols];
        parallel_rows(&mut data, cols, &par(4), |row0, chunk| {
            assert_eq!(chunk.len() % cols, 0);
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (row0 + r) as f32;
                }
            }
        });
        for (r, row) in data.chunks_exact(cols).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r} wrong");
        }
    }

    #[test]
    fn serial_threshold_short_circuits_dispatch() {
        // With a large threshold, the pool must not be touched: the whole
        // range arrives as one call on the calling thread.
        let calls = AtomicUsize::new(0);
        let caller = thread::current().id();
        let p = Parallelism {
            threads: 8,
            min_parallel_rows: 1_000,
            ..Parallelism::auto()
        };
        parallel_for(999, &p, |range| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(range, 0..999);
            assert_eq!(thread::current().id(), caller);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pool_workers_persist_across_runs() {
        let pool = Pool::new();
        for _ in 0..3 {
            let tasks: Vec<Task<'_>> = (0..4).map(|_| Box::new(|| {}) as Task<'_>).collect();
            pool.run(tasks, 4);
        }
        assert_eq!(pool.num_workers(), 3);
    }

    #[test]
    fn run_supports_borrowed_state() {
        let pool = Pool::new();
        let mut out = vec![0u64; 64];
        let tasks: Vec<Task<'_>> = out
            .chunks_mut(16)
            .enumerate()
            .map(|(ci, chunk)| -> Task<'_> {
                Box::new(move || {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (ci * 16 + i) as u64;
                    }
                })
            })
            .collect();
        pool.run(tasks, 4);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64));
    }

    #[test]
    fn concurrent_runs_share_the_global_pool() {
        // Two threads issuing runs against the global pool at once must
        // both complete (callers steal each other's tasks harmlessly).
        let done: Vec<AtomicUsize> = (0..2).map(|_| AtomicUsize::new(0)).collect();
        thread::scope(|s| {
            for slot in &done {
                s.spawn(move || {
                    parallel_for(256, &par(4), |range| {
                        slot.fetch_add(range.len(), Ordering::Relaxed);
                    });
                });
            }
        });
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed) == 256));
    }

    #[test]
    fn pool_stays_usable_after_a_panicking_run() {
        let pool = Pool::new();
        let boom: Vec<Task<'_>> = (0..4)
            .map(|i| -> Task<'_> {
                Box::new(move || {
                    if i == 0 {
                        panic!("boom");
                    }
                })
            })
            .collect();
        assert!(catch_unwind(AssertUnwindSafe(|| pool.run(boom, 4))).is_err());
        // The engine's failover ladder retries on the same global pool, so
        // a panicking run must leave workers, queue, and locks serviceable.
        let count = AtomicUsize::new(0);
        let tasks: Vec<Task<'_>> = (0..8)
            .map(|_| -> Task<'_> {
                Box::new(|| {
                    count.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run(tasks, 4);
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    #[should_panic(expected = "pool task panicked")]
    fn task_panics_propagate_to_caller() {
        let pool = Pool::new();
        let tasks: Vec<Task<'_>> = (0..4)
            .map(|i| -> Task<'_> {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                })
            })
            .collect();
        pool.run(tasks, 4);
    }
}
