//! The CPU parallel-kernel runtime: a persistent scoped worker pool plus
//! data-parallel helpers, built on `std` only.
//!
//! Every compute kernel in the workspace (dense matmul, per-destination
//! aggregation, feature gather, block-row gather) parallelizes through this
//! crate so one `--threads` setting governs them all. The design invariant
//! is **disjoint-output determinism**: work is always partitioned by
//! disjoint output rows (or columns), and every output element accumulates
//! its terms in the same order regardless of thread count or tile size —
//! so parallel results are bit-identical to serial ones, with no
//! floating-point reassociation anywhere.
//!
//! Two layers:
//!
//! * [`Pool`] / [`global_pool`] — a lazily grown set of persistent worker
//!   threads executing borrowed closures; [`Pool::run`] blocks until every
//!   task finishes, so tasks may borrow from the caller's stack (the same
//!   guarantee `std::thread::scope` gives, without per-call spawns).
//! * [`Parallelism`] — the tunable configuration (worker threads,
//!   serial-fallback threshold, matmul tile sizes) plus a process-wide
//!   *ambient* copy that trainers install and kernels read.

#![warn(missing_docs)]

mod config;
mod pool;

pub use buffalo_simd::{SimdBackend, SimdPolicy};
pub use config::{ambient, Parallelism};
pub use pool::{global_pool, parallel_for, parallel_rows, run_tasks, Pool, Task};
