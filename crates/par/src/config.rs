//! The [`Parallelism`] configuration and its process-wide ambient copy.

use buffalo_simd::SimdBackend;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default minimum output-row count before a kernel goes parallel; below
/// it the per-task dispatch overhead outweighs the work.
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 64;

/// Default depth (k) tile for the blocked matmul kernels.
pub const DEFAULT_TILE_K: usize = 64;

/// Default width (n) tile for the blocked matmul kernels. A `tile_k ×
/// tile_n` f32 panel of the right-hand matrix (32 KiB at the defaults)
/// stays cache-resident while a thread sweeps its output rows.
pub const DEFAULT_TILE_N: usize = 128;

/// How the CPU compute kernels split their work: worker-thread count,
/// the serial-fallback threshold, cache-tile sizes, and the SIMD inner
/// kernel backend.
///
/// `threads` and `min_parallel_rows` never affect results — kernels
/// partition by disjoint output rows and keep per-element accumulation
/// order fixed. Under the default [`SimdBackend::Scalar`] backend the
/// tile sizes are also bitwise-neutral, so any two scalar configurations
/// produce bit-identical tensors (the historical contract, unchanged).
/// A vector `simd` backend selects different (run-to-run deterministic)
/// rounding, and makes the tile grid part of that rounding pattern: each
/// tile's lane body/scalar tail split follows the tile bounds. In short:
/// numerics are a function of (`simd`, `tile_k`, `tile_n`) and nothing
/// else here; see [`SimdBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Total threads applied to a kernel, including the calling thread
    /// (`1` = serial).
    pub threads: usize,
    /// Minimum output-row count before a kernel dispatches to the pool.
    pub min_parallel_rows: usize,
    /// Depth (k) tile of the blocked matmul kernels.
    pub tile_k: usize,
    /// Width (n) tile of the blocked matmul kernels.
    pub tile_n: usize,
    /// SIMD backend for the per-element inner kernels (axpy/dot/widen).
    /// Unlike the scheduling fields this selects the numerics; scalar is
    /// the default and vectorization is opt-in (CLI `--simd`).
    pub simd: SimdBackend,
}

impl Parallelism {
    /// Strictly serial execution.
    pub fn serial() -> Self {
        Parallelism {
            threads: 1,
            ..Self::auto()
        }
    }

    /// `threads` workers with default threshold and tiles.
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads: threads.max(1),
            ..Self::auto()
        }
    }

    /// One thread per available CPU, default threshold and tiles.
    pub fn auto() -> Self {
        Parallelism {
            threads: available_threads(),
            min_parallel_rows: DEFAULT_MIN_PARALLEL_ROWS,
            tile_k: DEFAULT_TILE_K,
            tile_n: DEFAULT_TILE_N,
            simd: SimdBackend::Scalar,
        }
    }

    /// Threads a kernel with `rows` output rows should actually use:
    /// `1` below the serial-fallback threshold, never more than `rows`.
    pub fn effective_threads(&self, rows: usize) -> usize {
        if self.threads <= 1 || rows < self.min_parallel_rows.max(1) {
            1
        } else {
            self.threads.min(rows)
        }
    }

    /// Installs this configuration as the process-wide ambient one that
    /// [`ambient`] returns and every kernel without an explicit
    /// configuration reads.
    pub fn install(self) {
        AMBIENT_THREADS.store(self.threads.max(1), Ordering::Relaxed);
        AMBIENT_MIN_ROWS.store(self.min_parallel_rows.max(1), Ordering::Relaxed);
        AMBIENT_TILE_K.store(self.tile_k.max(1), Ordering::Relaxed);
        AMBIENT_TILE_N.store(self.tile_n.max(1), Ordering::Relaxed);
        AMBIENT_SIMD.store(self.simd as usize + 1, Ordering::Relaxed);
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

// Zero means "not installed": fall back to the `auto()` defaults.
static AMBIENT_THREADS: AtomicUsize = AtomicUsize::new(0);
static AMBIENT_MIN_ROWS: AtomicUsize = AtomicUsize::new(0);
static AMBIENT_TILE_K: AtomicUsize = AtomicUsize::new(0);
static AMBIENT_TILE_N: AtomicUsize = AtomicUsize::new(0);
// Stored as `backend as usize + 1` so zero keeps meaning "not installed"
// (falling back to the scalar default).
static AMBIENT_SIMD: AtomicUsize = AtomicUsize::new(0);

fn read_or(cell: &AtomicUsize, default: usize) -> usize {
    match cell.load(Ordering::Relaxed) {
        0 => default,
        v => v,
    }
}

/// The process-wide ambient configuration: the last one
/// [installed](Parallelism::install), or [`Parallelism::auto`] if none
/// has been.
pub fn ambient() -> Parallelism {
    Parallelism {
        threads: read_or(&AMBIENT_THREADS, available_threads()),
        min_parallel_rows: read_or(&AMBIENT_MIN_ROWS, DEFAULT_MIN_PARALLEL_ROWS),
        tile_k: read_or(&AMBIENT_TILE_K, DEFAULT_TILE_K),
        tile_n: read_or(&AMBIENT_TILE_N, DEFAULT_TILE_N),
        simd: match AMBIENT_SIMD.load(Ordering::Relaxed) {
            0 => SimdBackend::Scalar,
            v => SimdBackend::from_index(v - 1).unwrap_or(SimdBackend::Scalar),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_fallback_threshold_applies() {
        let p = Parallelism {
            threads: 8,
            min_parallel_rows: 100,
            tile_k: 4,
            tile_n: 4,
            simd: SimdBackend::Scalar,
        };
        assert_eq!(p.effective_threads(99), 1);
        assert_eq!(p.effective_threads(100), 8);
        assert_eq!(p.effective_threads(3), 1);
        assert_eq!(Parallelism::serial().effective_threads(1 << 20), 1);
    }

    #[test]
    fn effective_threads_never_exceed_rows() {
        let p = Parallelism {
            threads: 16,
            min_parallel_rows: 1,
            tile_k: 4,
            tile_n: 4,
            simd: SimdBackend::Scalar,
        };
        assert_eq!(p.effective_threads(5), 5);
    }

    #[test]
    fn ambient_defaults_are_sane() {
        let a = ambient();
        assert!(a.threads >= 1);
        assert!(a.tile_k >= 1 && a.tile_n >= 1);
        assert!(a.min_parallel_rows >= 1);
        // Nothing installed (or whatever a prior test installed): the
        // decoded backend is always a valid enum value.
        assert!(SimdBackend::from_index(a.simd as usize).is_some());
    }
}
