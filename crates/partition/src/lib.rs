//! Baseline partitioners Buffalo is evaluated against.
//!
//! The paper compares bucket-level scheduling with four batch-level
//! partitioning strategies (§V-H, Figure 16):
//!
//! * [`metis`] — a real multilevel k-way partitioner (heavy-edge-matching
//!   coarsening, greedy initial partition, boundary FM refinement). This
//!   is the expensive step the paper's Figure 5 motivates against.
//! * [`betty`] — Betty (ASPLOS'23): build a *redundancy-embedded graph*
//!   (REG) over the output nodes, whose edge weights count shared
//!   neighbors, then METIS-partition the REG. Both phases are really
//!   executed and timed; they are the "REG construction" and "METIS
//!   partition" components of Figure 11.
//! * [`random_partition`] / [`range_partition`] — the 1-D output-node
//!   splits of §V-H.
//!
//! All partitioners return groups of *seed local ids*, the same currency
//! as `buffalo_bucketing::SchedulePlan`, so trainers can drive any of them
//! through one micro-batch path.

#![warn(missing_docs)]

pub mod betty;
pub mod metis;
mod simple;

pub use betty::{BettyError, BettyPartition, BettyPartitioner};
pub use metis::{edge_cut, metis_kway, MetisOptions};
pub use simple::{random_partition, range_partition};
