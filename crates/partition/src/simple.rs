//! Random and Range 1-D output-node partitioners (§V-H).

use buffalo_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Range partitioning: sequentially and evenly splits the 1-D space of
/// output nodes. With outputs `{10, 35, 46, 79, 105, 123, 254, 328}` and
/// `k = 2` this yields `{10, 35, 46, 79}` and `{105, 123, 254, 328}` — the
/// paper's own example.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn range_partition(num_outputs: usize, k: usize) -> Vec<Vec<NodeId>> {
    assert!(k > 0, "k must be positive");
    let k_eff = k.min(num_outputs.max(1));
    let base = num_outputs / k_eff;
    let extra = num_outputs % k_eff;
    let mut groups = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k_eff {
        let len = base + usize::from(i < extra);
        groups.push(((start as NodeId)..(start + len) as NodeId).collect());
        start += len;
    }
    groups.resize_with(k, Vec::new);
    groups
}

/// Random partitioning: shuffles the output nodes, then splits evenly.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn random_partition(num_outputs: usize, k: usize, seed: u64) -> Vec<Vec<NodeId>> {
    assert!(k > 0, "k must be positive");
    let mut order: Vec<NodeId> = (0..num_outputs as NodeId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let k_eff = k.min(num_outputs.max(1));
    let base = num_outputs / k_eff;
    let extra = num_outputs % k_eff;
    let mut groups = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k_eff {
        let len = base + usize::from(i < extra);
        groups.push(order[start..start + len].to_vec());
        start += len;
    }
    groups.resize_with(k, Vec::new);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_matches_paper_example() {
        // 8 outputs into 2 parts: first four and last four.
        let g = range_partition(8, 2);
        assert_eq!(g[0], vec![0, 1, 2, 3]);
        assert_eq!(g[1], vec![4, 5, 6, 7]);
    }

    #[test]
    fn random_is_a_shuffled_partition() {
        let g = random_partition(100, 4, 9);
        let mut all: Vec<NodeId> = g.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        // Not the identity arrangement.
        assert_ne!(g[0], (0..25).collect::<Vec<NodeId>>());
    }

    #[test]
    fn more_parts_than_outputs_leaves_empties() {
        let g = range_partition(3, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.iter().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn zero_outputs_is_fine() {
        let g = random_partition(0, 3, 1);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(Vec::is_empty));
    }

    proptest! {
        /// Both methods partition all outputs with near-even sizes.
        #[test]
        fn partitions_are_even(n in 0usize..500, k in 1usize..16, seed in 0u64..50) {
            for groups in [range_partition(n, k), random_partition(n, k, seed)] {
                let mut all: Vec<NodeId> = groups.iter().flatten().copied().collect();
                all.sort_unstable();
                prop_assert_eq!(all, (0..n as NodeId).collect::<Vec<_>>());
                let nonempty: Vec<usize> = groups.iter().map(Vec::len).filter(|&l| l > 0).collect();
                if let (Some(&max), Some(&min)) = (nonempty.iter().max(), nonempty.iter().min()) {
                    prop_assert!(max - min <= 1);
                }
            }
        }
    }
}
