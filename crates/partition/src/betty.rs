//! Betty-style batch-level partitioning (ASPLOS'23), the paper's primary
//! baseline.
//!
//! Betty partitions a sampled batch into micro-batches by:
//!
//! 1. **REG construction** — building a *redundancy-embedded graph* over
//!    the output nodes: two output nodes are connected with a weight equal
//!    to the number of sampled input nodes they share, so that a min-cut
//!    partition of the REG minimizes cross-micro-batch node redundancy.
//!    This explicit embedding is the expensive step the Buffalo paper
//!    calls out ("can take a few minutes for a billion-scale graph").
//! 2. **METIS partitioning** of the REG into `K` balanced groups.
//!
//! Both phases are executed for real and timed separately — they are the
//! "REG construction" and "METIS partition" bars of Figure 11.

use crate::metis::{metis_kway, MetisOptions};
use buffalo_graph::{CsrGraph, GraphBuilder, NodeId};
use std::fmt;
use std::time::{Duration, Instant};

/// Betty's failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BettyError {
    /// Betty cannot process output nodes with zero in-edges (§V-B: "Betty
    /// does not support block generation for billion-scale OGBN-papers
    /// because Betty cannot process nodes with zero in-edges").
    ZeroInDegree {
        /// The first offending output node (batch-local id).
        node: NodeId,
    },
    /// `k` was zero or exceeded the number of output nodes.
    InvalidK {
        /// The requested group count.
        k: usize,
        /// Number of output nodes available.
        num_outputs: usize,
    },
}

impl fmt::Display for BettyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BettyError::ZeroInDegree { node } => {
                write!(f, "Betty cannot process node {node} with zero in-edges")
            }
            BettyError::InvalidK { k, num_outputs } => {
                write!(f, "invalid K={k} for {num_outputs} output nodes")
            }
        }
    }
}

impl std::error::Error for BettyError {}

/// Result of a Betty partitioning run, with per-phase timings.
#[derive(Debug, Clone)]
pub struct BettyPartition {
    /// Seed local ids per micro-batch.
    pub groups: Vec<Vec<NodeId>>,
    /// Time spent building the redundancy-embedded graph.
    pub reg_time: Duration,
    /// Time spent in METIS over the REG.
    pub metis_time: Duration,
    /// Number of REG edges (diagnostic).
    pub reg_edges: usize,
}

/// Betty batch-level partitioner.
#[derive(Debug, Clone)]
pub struct BettyPartitioner {
    /// METIS options used on the REG.
    pub metis_options: MetisOptions,
    /// Cap on the dependent-output set tracked per node during REG
    /// construction. Betty must know, for every node of the batch, which
    /// outputs' multi-hop closures contain it; propagating those sets over
    /// every edge of every layer is the cost that makes REG construction
    /// "take a few minutes for a billion-scale graph" (§I). The cap bounds
    /// pathological hubs (which every output depends on) without dropping
    /// any output node.
    pub max_dependents_per_node: usize,
    /// Aggregation depth whose dependencies the REG embeds.
    pub depth: usize,
}

impl Default for BettyPartitioner {
    fn default() -> Self {
        BettyPartitioner {
            metis_options: MetisOptions::default(),
            max_dependents_per_node: 128,
            depth: 2,
        }
    }
}

impl BettyPartitioner {
    /// Partitions the first `num_seeds` local ids of `batch` into `k`
    /// groups.
    ///
    /// # Errors
    ///
    /// * [`BettyError::ZeroInDegree`] if any output node has no sampled
    ///   in-neighbors (Betty's documented limitation).
    /// * [`BettyError::InvalidK`] if `k == 0` or `k > num_seeds`.
    pub fn partition(
        &self,
        batch: &CsrGraph,
        num_seeds: usize,
        k: usize,
    ) -> Result<BettyPartition, BettyError> {
        if k == 0 || k > num_seeds {
            return Err(BettyError::InvalidK {
                k,
                num_outputs: num_seeds,
            });
        }
        for v in 0..num_seeds as NodeId {
            if batch.degree(v) == 0 {
                return Err(BettyError::ZeroInDegree { node: v });
            }
        }
        // Phase 1: REG construction.
        // lint:allow(wallclock-taint): phase-timing telemetry for the Betty baseline report (suppresses chain: BettyPartitioner::partition → Instant::now)
        let reg_start = Instant::now();
        let (reg, reg_edges) = self.build_reg(batch, num_seeds);
        let reg_time = reg_start.elapsed();
        // Phase 2: METIS over the REG.
        // lint:allow(wallclock-taint): phase-timing telemetry for the Betty baseline report (suppresses chain: BettyPartitioner::partition → Instant::now)
        let metis_start = Instant::now();
        let parts = metis_kway(&reg, k, self.metis_options);
        let metis_time = metis_start.elapsed();
        let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for (v, &p) in parts.iter().enumerate() {
            groups[p as usize].push(v as NodeId);
        }
        Ok(BettyPartition {
            groups,
            reg_time,
            metis_time,
            reg_edges,
        })
    }

    /// Builds the redundancy-embedded graph.
    ///
    /// Phase 1 propagates, for every batch node, the (capped, sorted) set
    /// of output nodes whose `depth`-hop closure contains it — the
    /// explicit multi-hop dependency embedding that makes Betty's REG
    /// construction expensive. Phase 2 connects outputs that co-depend on
    /// a node (consecutive pairs per dependent set, so REG size stays
    /// linear in the embedded information while METIS still clusters
    /// high-overlap outputs).
    fn build_reg(&self, batch: &CsrGraph, num_seeds: usize) -> (CsrGraph, usize) {
        let n = batch.num_nodes();
        let cap = self.max_dependents_per_node.max(2);
        let mut dependents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for s in 0..num_seeds as NodeId {
            dependents[s as usize].push(s);
        }
        let mut merged: Vec<NodeId> = Vec::with_capacity(2 * cap);
        for _ in 0..self.depth {
            for v in 0..n as NodeId {
                if dependents[v as usize].is_empty() {
                    continue;
                }
                for &u in batch.neighbors(v) {
                    // dependents[u] ∪= dependents[v], sorted merge, capped.
                    let (dv, du) = (&dependents[v as usize], &dependents[u as usize]);
                    if du.len() >= cap {
                        continue;
                    }
                    merged.clear();
                    let (mut i, mut j) = (0usize, 0usize);
                    while merged.len() < cap && (i < dv.len() || j < du.len()) {
                        let next = match (dv.get(i), du.get(j)) {
                            (Some(&a), Some(&b)) if a == b => {
                                i += 1;
                                j += 1;
                                a
                            }
                            (Some(&a), Some(&b)) if a < b => {
                                i += 1;
                                a
                            }
                            (Some(_), Some(&b)) => {
                                j += 1;
                                b
                            }
                            (Some(&a), None) => {
                                i += 1;
                                a
                            }
                            (None, Some(&b)) => {
                                j += 1;
                                b
                            }
                            (None, None) => break,
                        };
                        merged.push(next);
                    }
                    dependents[u as usize].clear();
                    dependents[u as usize].extend_from_slice(&merged);
                }
            }
        }
        let mut b = GraphBuilder::new(num_seeds);
        let mut raw_edges = 0usize;
        for deps in &dependents {
            for w in deps.windows(2) {
                b.add_edge(w[0], w[1]);
                raw_edges += 1;
            }
        }
        (b.build_undirected(), raw_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::generators;
    use buffalo_sampling::BatchSampler;

    fn sampled_batch(seeds: usize) -> buffalo_sampling::Batch {
        let g = generators::barabasi_albert(2_000, 6, 0.4, 9).unwrap();
        let seed_ids: Vec<NodeId> = (0..seeds as NodeId).collect();
        BatchSampler::new(vec![10, 25]).sample(&g, &seed_ids, 4)
    }

    #[test]
    fn partitions_cover_all_outputs() {
        let batch = sampled_batch(200);
        let part = BettyPartitioner::default()
            .partition(&batch.graph, batch.num_seeds, 4)
            .unwrap();
        assert_eq!(part.groups.len(), 4);
        let mut all: Vec<NodeId> = part.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn groups_are_roughly_balanced() {
        let batch = sampled_batch(300);
        let part = BettyPartitioner::default()
            .partition(&batch.graph, batch.num_seeds, 3)
            .unwrap();
        for g in &part.groups {
            assert!(
                g.len() >= 50 && g.len() <= 150,
                "unbalanced group of {} outputs",
                g.len()
            );
        }
    }

    #[test]
    fn rejects_zero_in_degree_outputs() {
        // An isolated seed: batch graph where seed 1 has no in-edges.
        let mut b = buffalo_graph::GraphBuilder::new(4);
        b.add_edge(2, 0);
        b.add_edge(3, 0);
        let g = b.build_directed();
        let err = BettyPartitioner::default().partition(&g, 2, 2).unwrap_err();
        assert_eq!(err, BettyError::ZeroInDegree { node: 1 });
        assert!(err.to_string().contains("zero in-edges"));
    }

    #[test]
    fn rejects_invalid_k() {
        let batch = sampled_batch(10);
        let p = BettyPartitioner::default();
        assert!(matches!(
            p.partition(&batch.graph, batch.num_seeds, 0),
            Err(BettyError::InvalidK { .. })
        ));
        assert!(matches!(
            p.partition(&batch.graph, batch.num_seeds, 11),
            Err(BettyError::InvalidK { .. })
        ));
    }

    #[test]
    fn reg_links_outputs_sharing_inputs() {
        // Outputs 0 and 1 share input 3; output 2 is independent.
        let mut b = buffalo_graph::GraphBuilder::new(5);
        b.add_edge(3, 0);
        b.add_edge(3, 1);
        b.add_edge(4, 2);
        let g = b.build_directed();
        let p = BettyPartitioner::default();
        let (reg, edges) = p.build_reg(&g, 3);
        assert!(reg.has_edge(0, 1));
        assert_eq!(reg.degree(2), 0);
        assert_eq!(edges, 1);
    }

    #[test]
    fn timings_are_recorded() {
        let batch = sampled_batch(100);
        let part = BettyPartitioner::default()
            .partition(&batch.graph, batch.num_seeds, 2)
            .unwrap();
        // Durations are non-negative by construction; just make sure the
        // phases actually ran.
        assert!(part.reg_edges > 0);
        assert!(part.reg_time + part.metis_time > Duration::ZERO);
    }
}
