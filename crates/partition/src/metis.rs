//! Multilevel k-way graph partitioning in the style of METIS.
//!
//! Three phases, as in the METIS papers the GNN systems rely on:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched node
//!    pairs into super-nodes (accumulating node and edge weights) until
//!    the graph is small or matching stalls.
//! 2. **Initial partitioning** — greedy growth: super-nodes are assigned
//!    in descending weight order to the lightest compatible part,
//!    preferring the part with the strongest connection.
//! 3. **Uncoarsening + refinement** — the partition is projected back
//!    level by level; at each level a bounded boundary
//!    Fiduccia–Mattheyses pass moves nodes to reduce the edge cut while
//!    keeping parts within the balance tolerance.
//!
//! This deliberate, faithful implementation is what makes the paper's
//! "partitioning is slow relative to bucket scheduling" comparison honest
//! (Figures 5 and 11): its cost is dominated by the repeated node
//! dependency analysis Buffalo avoids.

use buffalo_graph::{CsrGraph, NodeId};

/// Options for [`metis_kway`].
#[derive(Debug, Clone, Copy)]
pub struct MetisOptions {
    /// Stop coarsening when the graph has at most `coarsen_to × k` nodes.
    pub coarsen_to: usize,
    /// Allowed imbalance: a part may weigh up to `(1 + epsilon) × ideal`.
    pub epsilon: f64,
    /// Boundary refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// RNG seed for matching tie-breaks.
    pub seed: u64,
}

impl Default for MetisOptions {
    fn default() -> Self {
        MetisOptions {
            coarsen_to: 30,
            epsilon: 0.1,
            refine_passes: 4,
            seed: 1,
        }
    }
}

/// Internal weighted graph used across coarsening levels.
#[derive(Debug, Clone)]
struct WGraph {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    eweights: Vec<u64>,
    nweights: Vec<u64>,
}

impl WGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        WGraph {
            offsets: g.offsets().to_vec(),
            neighbors: g.neighbor_array().to_vec(),
            eweights: vec![1; g.num_edges()],
            nweights: vec![1; g.num_nodes()],
        }
    }

    fn num_nodes(&self) -> usize {
        self.nweights.len()
    }

    fn row(&self, v: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        let (s, e) = (self.offsets[v as usize], self.offsets[v as usize + 1]);
        self.neighbors[s..e]
            .iter()
            .copied()
            .zip(self.eweights[s..e].iter().copied())
    }

    fn total_weight(&self) -> u64 {
        self.nweights.iter().sum()
    }
}

/// Partitions `g` into `k` parts, returning the part id of every node.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn metis_kway(g: &CsrGraph, k: usize, options: MetisOptions) -> Vec<u32> {
    assert!(k > 0, "k must be positive");
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    if k == 1 {
        return vec![0; n];
    }
    if k >= n {
        return (0..n as u32).map(|v| v % k as u32).collect();
    }
    let base = WGraph::from_csr(g);
    // Coarsening: remember each level's graph and the projection map.
    let mut levels: Vec<(WGraph, Vec<NodeId>)> = Vec::new(); // (graph, map fine->coarse)
    let mut current = base;
    let target = options.coarsen_to.saturating_mul(k).max(2 * k);
    let mut rng_state = options.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while current.num_nodes() > target {
        let (coarse, map) = coarsen_once(&current, &mut rng_state);
        if coarse.num_nodes() as f64 > current.num_nodes() as f64 * 0.95 {
            break; // matching stalled
        }
        let prev = std::mem::replace(&mut current, coarse);
        levels.push((prev, map));
    }
    // Initial partition on the coarsest graph.
    let mut parts = initial_partition(&current, k, options.epsilon);
    refine(
        &current,
        &mut parts,
        k,
        options.epsilon,
        options.refine_passes,
    );
    // Uncoarsen with refinement at every level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_parts = vec![0u32; fine.num_nodes()];
        for (v, p) in fine_parts.iter_mut().enumerate() {
            *p = parts[map[v] as usize];
        }
        refine(
            &fine,
            &mut fine_parts,
            k,
            options.epsilon,
            options.refine_passes,
        );
        parts = fine_parts;
    }
    parts
}

/// Weight of edges crossing parts (each undirected edge counted once).
pub fn edge_cut(g: &CsrGraph, parts: &[u32]) -> u64 {
    assert_eq!(parts.len(), g.num_nodes(), "parts length mismatch");
    let mut cut = 0u64;
    for v in g.node_ids() {
        for &u in g.neighbors(v) {
            if u > v && parts[u as usize] != parts[v as usize] {
                cut += 1;
            }
        }
    }
    cut
}

fn next_rand(state: &mut u64) -> u64 {
    // xorshift64*
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One round of heavy-edge matching. Returns the coarse graph and the
/// fine→coarse projection.
fn coarsen_once(g: &WGraph, rng_state: &mut u64) -> (WGraph, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut matched: Vec<NodeId> = vec![NodeId::MAX; n];
    // Random visitation order breaks adversarial structure.
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    for i in (1..n).rev() {
        let j = (next_rand(rng_state) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    for &v in &order {
        if matched[v as usize] != NodeId::MAX {
            continue;
        }
        // Heaviest incident edge to an unmatched neighbor.
        let mut best: Option<(NodeId, u64)> = None;
        for (u, w) in g.row(v) {
            if u != v && matched[u as usize] == NodeId::MAX && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                matched[v as usize] = u;
                matched[u as usize] = v;
            }
            None => matched[v as usize] = v, // singleton
        }
    }
    // Assign coarse ids.
    let mut map: Vec<NodeId> = vec![NodeId::MAX; n];
    let mut next = 0 as NodeId;
    for v in 0..n as NodeId {
        if map[v as usize] != NodeId::MAX {
            continue;
        }
        map[v as usize] = next;
        let m = matched[v as usize];
        if m != v && m != NodeId::MAX {
            map[m as usize] = next;
        }
        next += 1;
    }
    let cn = next as usize;
    // Build coarse adjacency by accumulating weights.
    let mut nweights = vec![0u64; cn];
    for v in 0..n {
        nweights[map[v] as usize] += g.nweights[v];
    }
    // Aggregate edges with a per-row hash-free accumulator.
    let mut agg: Vec<(NodeId, u64)> = Vec::new();
    let mut offsets = vec![0usize; cn + 1];
    let mut adj_lists: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); cn];
    for v in 0..n as NodeId {
        let cv = map[v as usize];
        for (u, w) in g.row(v) {
            let cu = map[u as usize];
            if cu != cv {
                adj_lists[cv as usize].push((cu, w));
            }
        }
    }
    let mut neighbors = Vec::new();
    let mut eweights = Vec::new();
    for (cv, list) in adj_lists.iter_mut().enumerate() {
        list.sort_unstable_by_key(|&(u, _)| u);
        agg.clear();
        for &(u, w) in list.iter() {
            match agg.last_mut() {
                Some((lu, lw)) if *lu == u => *lw += w,
                _ => agg.push((u, w)),
            }
        }
        for &(u, w) in &agg {
            neighbors.push(u);
            eweights.push(w);
        }
        offsets[cv + 1] = neighbors.len();
    }
    (
        WGraph {
            offsets,
            neighbors,
            eweights,
            nweights,
        },
        map,
    )
}

/// Greedy initial partition: descending node weight, into the lightest
/// part (preferring the most-connected part among those under the cap).
fn initial_partition(g: &WGraph, k: usize, epsilon: f64) -> Vec<u32> {
    let n = g.num_nodes();
    let total = g.total_weight();
    let cap = ((total as f64 / k as f64) * (1.0 + epsilon)).ceil() as u64;
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.nweights[v as usize]));
    let mut parts = vec![u32::MAX; n];
    let mut loads = vec![0u64; k];
    let mut conn = vec![0u64; k];
    for &v in &order {
        for c in conn.iter_mut() {
            *c = 0;
        }
        for (u, w) in g.row(v) {
            let p = parts[u as usize];
            if p != u32::MAX {
                conn[p as usize] += w;
            }
        }
        // Best: under cap, maximize connectivity, tie-break lightest.
        let mut best: Option<usize> = None;
        for p in 0..k {
            if loads[p] + g.nweights[v as usize] > cap {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b) => {
                    if (conn[p], std::cmp::Reverse(loads[p]))
                        > (conn[b], std::cmp::Reverse(loads[b]))
                    {
                        Some(p)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let p = best.unwrap_or_else(|| {
            // Everything over cap (possible with huge super-nodes): lightest.
            (0..k).min_by_key(|&p| loads[p]).unwrap()
        });
        parts[v as usize] = p as u32;
        loads[p] += g.nweights[v as usize];
    }
    parts
}

/// Bounded boundary FM refinement: repeatedly move boundary nodes to the
/// neighboring part with the largest positive gain, respecting balance.
fn refine(g: &WGraph, parts: &mut [u32], k: usize, epsilon: f64, passes: usize) {
    let total = g.total_weight();
    let cap = ((total as f64 / k as f64) * (1.0 + epsilon)).ceil() as u64;
    let mut loads = vec![0u64; k];
    for v in 0..g.num_nodes() {
        loads[parts[v] as usize] += g.nweights[v];
    }
    let mut conn = vec![0u64; k];
    for _ in 0..passes {
        let mut moved = false;
        for v in 0..g.num_nodes() as NodeId {
            let home = parts[v as usize] as usize;
            for c in conn.iter_mut() {
                *c = 0;
            }
            let mut boundary = false;
            for (u, w) in g.row(v) {
                let p = parts[u as usize] as usize;
                conn[p] += w;
                if p != home {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            let w_v = g.nweights[v as usize];
            let mut best_gain = 0i64;
            let mut best_part = home;
            for p in 0..k {
                if p == home || loads[p] + w_v > cap {
                    continue;
                }
                let gain = conn[p] as i64 - conn[home] as i64;
                if gain > best_gain {
                    best_gain = gain;
                    best_part = p;
                }
            }
            if best_part != home {
                parts[v as usize] = best_part as u32;
                loads[home] -= w_v;
                loads[best_part] += w_v;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::{generators, GraphBuilder};

    /// Two dense cliques joined by one edge — the obvious 2-way partition.
    fn two_cliques(size: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(2 * size);
        for i in 0..size as NodeId {
            for j in 0..i {
                b.add_edge(i, j);
                b.add_edge(i + size as NodeId, j + size as NodeId);
            }
        }
        b.add_edge(0, size as NodeId);
        b.build_undirected()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques(20);
        let parts = metis_kway(&g, 2, MetisOptions::default());
        assert_eq!(edge_cut(&g, &parts), 1, "only the bridge should be cut");
        // Each clique entirely in one part.
        for i in 1..20u32 {
            assert_eq!(parts[0], parts[i as usize]);
            assert_eq!(parts[20], parts[20 + i as usize]);
        }
        assert_ne!(parts[0], parts[20]);
    }

    #[test]
    fn respects_balance_tolerance() {
        let g = generators::barabasi_albert(2_000, 5, 0.3, 7).unwrap();
        let k = 4;
        let parts = metis_kway(&g, k, MetisOptions::default());
        let mut sizes = vec![0usize; k];
        for &p in &parts {
            sizes[p as usize] += 1;
        }
        let cap = (2_000f64 / k as f64 * 1.15).ceil() as usize;
        for (p, &s) in sizes.iter().enumerate() {
            assert!(s <= cap, "part {p} has {s} nodes (cap {cap})");
            assert!(s > 0, "part {p} is empty");
        }
    }

    #[test]
    fn cut_is_much_better_than_random() {
        let g = generators::watts_strogatz(3_000, 10, 0.05, 5).unwrap();
        let parts = metis_kway(&g, 4, MetisOptions::default());
        let random: Vec<u32> = (0..3_000u32).map(|v| v % 4).collect();
        let metis_cut = edge_cut(&g, &parts);
        let random_cut = edge_cut(&g, &random);
        assert!(
            (metis_cut as f64) < 0.4 * random_cut as f64,
            "metis {metis_cut} vs random {random_cut}"
        );
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = two_cliques(5);
        let parts = metis_kway(&g, 1, MetisOptions::default());
        assert!(parts.iter().all(|&p| p == 0));
    }

    #[test]
    fn k_at_least_n_round_robins() {
        let g = two_cliques(2);
        let parts = metis_kway(&g, 10, MetisOptions::default());
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|&p| p < 10));
    }

    #[test]
    fn empty_graph_yields_empty_parts() {
        let g = CsrGraph::empty(0);
        assert!(metis_kway(&g, 3, MetisOptions::default()).is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::barabasi_albert(1_000, 4, 0.2, 3).unwrap();
        let a = metis_kway(&g, 3, MetisOptions::default());
        let b = metis_kway(&g, 3, MetisOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        let g = two_cliques(3);
        let _ = metis_kway(&g, 0, MetisOptions::default());
    }

    #[test]
    fn edge_cut_counts_undirected_once() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        let g = b.build_undirected();
        assert_eq!(edge_cut(&g, &[0, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 0]), 0);
    }
}
