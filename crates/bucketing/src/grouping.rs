//! *MemBalancedGrouping* (Algorithm 4): greedy load-balanced bin packing
//! of buckets into `K` memory-balanced bucket groups.

use crate::bucket::DegreeBucket;
use buffalo_memsim::estimate::{self, BucketStats};

/// A bucket plus its precomputed statistics and per-bucket memory estimate
/// — one "item" of the bin-packing formulation (weight = value = estimated
/// memory, §IV-C2).
#[derive(Debug, Clone)]
pub struct BucketEntry {
    /// The bucket itself.
    pub bucket: DegreeBucket,
    /// `I`/`O`/`D` statistics for Eq. 1.
    pub stats: BucketStats,
    /// *BucketMemEstimator* output for this bucket, bytes.
    pub mem_estimate: u64,
}

/// Result of a grouping attempt.
#[derive(Debug, Clone)]
pub struct GroupingOutcome {
    /// The `K` bucket groups (indices into the input entry slice).
    pub groups: Vec<Vec<usize>>,
    /// Redundancy-aware memory estimate per group, bytes.
    pub group_estimates: Vec<u64>,
    /// Whether every group fits the memory constraint.
    pub success: bool,
}

impl GroupingOutcome {
    /// Largest relative imbalance between group estimates:
    /// `(max - min) / max`. Zero for `K = 1` or empty groups.
    pub fn imbalance(&self) -> f64 {
        let max = self.group_estimates.iter().copied().max().unwrap_or(0);
        let min = self.group_estimates.iter().copied().min().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            (max - min) as f64 / max as f64
        }
    }
}

/// Algorithm 4: greedily packs `entries` into `k` groups.
///
/// Buckets are sorted by per-bucket memory estimate descending; each is
/// placed into the group with the lowest current redundancy-aware
/// estimate. After placement, every group's estimate is validated against
/// `mem_constraint`; `success` is false if any group exceeds it (the
/// scheduler then retries with a larger `k`).
///
/// `clustering` is the graph's average clustering coefficient `C`.
/// `fixed_bytes` is the per-micro-batch constant cost — parameters,
/// gradients, optimizer state — which every group pays exactly once, so
/// entry estimates must *exclude* it (otherwise a group of `n` buckets
/// would be charged for `n` copies of the model).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn mem_balanced_grouping(
    entries: &[BucketEntry],
    k: usize,
    mem_constraint: u64,
    clustering: f64,
    fixed_bytes: u64,
) -> GroupingOutcome {
    assert!(k > 0, "need at least one group");
    let mut order: Vec<usize> = (0..entries.len()).collect();
    // Descending by estimated memory (Algorithm 4 line 3); tie-break on
    // index for determinism.
    order.sort_by(|&a, &b| {
        entries[b]
            .mem_estimate
            .cmp(&entries[a].mem_estimate)
            .then(a.cmp(&b))
    });
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    // Incremental group estimates: Eq. 2 is a discounted sum, so adding a
    // bucket adds `m_est * R_group` — maintain running totals. The first
    // bucket of a group is undiscounted: the grouping ratio models
    // redundancy with buckets *already in the group*, and a lone bucket's
    // estimate is already exact.
    let mut estimates: Vec<u64> = vec![0; k];
    for idx in order {
        // Place into the currently-lightest group (Algorithm 4 line 7).
        let (gi, _) = estimates
            .iter()
            .enumerate()
            .min_by_key(|&(i, &e)| (e, i))
            // lint:allow(panic-reachability): infallible — `estimates` has length k and schedule_impl validates k >= 1 before grouping (suppresses chain: BuffaloScheduler::schedule_impl → mem_balanced_grouping → .expect())
            .expect("k >= 1");
        let contribution = if groups[gi].is_empty() {
            entries[idx].mem_estimate
        } else {
            (entries[idx].mem_estimate as f64
                * estimate::grouping_ratio(&entries[idx].stats, clustering)) as u64
        };
        groups[gi].push(idx);
        estimates[gi] += contribution;
    }
    for (e, g) in estimates.iter_mut().zip(&groups) {
        if !g.is_empty() {
            *e += fixed_bytes;
        }
    }
    let success = estimates.iter().all(|&e| e <= mem_constraint);
    GroupingOutcome {
        groups,
        group_estimates: estimates,
        success,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::NodeId;
    use proptest::prelude::*;

    fn entry(mem: u64, volume: usize) -> BucketEntry {
        BucketEntry {
            bucket: DegreeBucket {
                degree: 5,
                nodes: (0..volume as NodeId).collect(),
                split_index: None,
            },
            // num_input >= O*D so the grouping ratio is 1 and estimates
            // add linearly — easier to reason about in unit tests.
            stats: BucketStats {
                degree: 5,
                num_output: volume,
                num_input: volume * 50,
            },
            mem_estimate: mem,
        }
    }

    #[test]
    fn single_group_takes_everything() {
        let entries = vec![entry(10, 1), entry(20, 2), entry(30, 3)];
        let out = mem_balanced_grouping(&entries, 1, 100, 0.5, 0);
        assert!(out.success);
        assert_eq!(out.groups[0].len(), 3);
        assert_eq!(out.group_estimates[0], 60);
    }

    #[test]
    fn fails_when_constraint_violated() {
        let entries = vec![entry(80, 1), entry(70, 1)];
        let out = mem_balanced_grouping(&entries, 1, 100, 0.5, 0);
        assert!(!out.success);
    }

    #[test]
    fn balances_across_groups() {
        // Sizes 8,7,6,5: greedy descending into 2 bins -> {8,5} vs {7,6}.
        let entries = vec![entry(8, 1), entry(7, 1), entry(6, 1), entry(5, 1)];
        let out = mem_balanced_grouping(&entries, 2, 100, 0.5, 0);
        assert!(out.success);
        let mut est = out.group_estimates.clone();
        est.sort_unstable();
        assert_eq!(est, vec![13, 13]);
        assert!(out.imbalance() < 0.2);
    }

    #[test]
    fn largest_bucket_placed_first() {
        let entries = vec![entry(1, 1), entry(100, 1)];
        let out = mem_balanced_grouping(&entries, 2, 1000, 0.5, 0);
        // The 100-byte bucket must be alone in its group.
        let g_of_big = out.groups.iter().position(|g| g.contains(&1)).unwrap();
        assert_eq!(out.groups[g_of_big], vec![1]);
    }

    #[test]
    fn redundant_buckets_are_discounted() {
        // I << O*D*C -> ratio < 1 -> later buckets in a group contribute
        // below their standalone estimate; the first is exact.
        let redundant = |mem: u64| BucketEntry {
            bucket: DegreeBucket {
                degree: 10,
                nodes: (0..100).collect(),
                split_index: None,
            },
            stats: BucketStats {
                degree: 10,
                num_output: 100,
                num_input: 200,
            },
            mem_estimate: mem,
        };
        let lone = mem_balanced_grouping(&[redundant(1_000)], 1, u64::MAX, 0.5, 0);
        assert_eq!(
            lone.group_estimates[0], 1_000,
            "a lone bucket's exact estimate must not be discounted"
        );
        let pair = mem_balanced_grouping(&[redundant(1_000), redundant(900)], 1, u64::MAX, 0.5, 0);
        // First placed exact (1000); second discounted: R = 200/(100*10*0.5) = 0.4.
        assert_eq!(pair.group_estimates[0], 1_000 + 360);
    }

    #[test]
    fn deterministic_given_ties() {
        let entries = vec![entry(5, 1), entry(5, 1), entry(5, 1)];
        let a = mem_balanced_grouping(&entries, 2, 100, 0.5, 0);
        let b = mem_balanced_grouping(&entries, 2, 100, 0.5, 0);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let _ = mem_balanced_grouping(&[], 0, 100, 0.5, 0);
    }

    #[test]
    fn empty_entries_succeed_trivially() {
        let out = mem_balanced_grouping(&[], 3, 10, 0.5, 0);
        assert!(out.success);
        assert_eq!(out.groups.len(), 3);
        assert_eq!(out.imbalance(), 0.0);
    }

    proptest! {
        /// Every bucket lands in exactly one group.
        #[test]
        fn grouping_is_a_partition(mems in proptest::collection::vec(1u64..1000, 0..40), k in 1usize..8) {
            let entries: Vec<BucketEntry> = mems.iter().map(|&m| entry(m, 1)).collect();
            let out = mem_balanced_grouping(&entries, k, u64::MAX, 0.3, 0);
            let mut seen: Vec<usize> = out.groups.iter().flatten().copied().collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..entries.len()).collect::<Vec<_>>());
        }

        /// Greedy bound: max group <= mean + max item (classic LPT-style bound).
        #[test]
        fn greedy_is_near_balanced(mems in proptest::collection::vec(1u64..1000, 1..40), k in 1usize..6) {
            let entries: Vec<BucketEntry> = mems.iter().map(|&m| entry(m, 1)).collect();
            let out = mem_balanced_grouping(&entries, k, u64::MAX, 0.3, 0);
            let total: u64 = out.group_estimates.iter().sum();
            let max_item: u64 = entries.iter().map(|e| e.mem_estimate).max().unwrap();
            let max_group: u64 = out.group_estimates.iter().copied().max().unwrap();
            prop_assert!(max_group <= total / k as u64 + max_item);
        }
    }
}
