//! Lightweight dependency-closure counting.
//!
//! The scheduler needs, for every bucket, the per-layer node/edge counts
//! of the micro-batch that bucket would generate. Counting is a BFS over
//! the sampled batch graph that touches each closure edge once — no
//! subgraph is materialized, which is why the paper can claim the inputs
//! of its estimator "do not bring any computation overhead" (§IV-D): the
//! same traversal happens during micro-batch generation anyway.

use buffalo_graph::{CsrGraph, NodeId};
use buffalo_memsim::estimate::{ClosureCounts, LayerCount};

/// Reusable versioned visit-marking scratch, avoiding an `O(n)` clear per
/// bucket.
#[derive(Debug, Default, Clone)]
pub struct ClosureScratch {
    version: u32,
    mark: Vec<u32>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
}

/// Computes per-layer closure counts for a micro-batch seeded at `seeds`
/// with aggregation depth `depth`, against the sampled `batch` graph.
///
/// Returned layers are ordered input layer first, matching
/// `buffalo_blocks::generate_blocks_fast` output and
/// [`buffalo_memsim::measure::training_memory`] expectations.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn closure_counts(
    batch: &CsrGraph,
    seeds: &[NodeId],
    depth: usize,
    scratch: &mut ClosureScratch,
) -> ClosureCounts {
    assert!(depth > 0, "depth must be at least 1");
    scratch.mark.resize(batch.num_nodes(), 0);
    scratch.version = scratch.version.wrapping_add(1);
    if scratch.version == 0 {
        // Wrapped: clear and restart versioning.
        scratch.mark.iter_mut().for_each(|m| *m = 0);
        scratch.version = 1;
    }
    let v = scratch.version;
    scratch.frontier.clear();
    scratch.frontier.extend_from_slice(seeds);
    for &s in seeds {
        scratch.mark[s as usize] = v;
    }
    let mut num_nodes = seeds.len();
    let mut layers_rev: Vec<LayerCount> = Vec::with_capacity(depth);
    let mut dst_count = seeds.len();
    // The destination set of layer `L - h` is the whole closure reached
    // within `h` hops (blocks chain src -> dst), so track cumulative
    // counts while expanding one hop at a time.
    for _ in 0..depth {
        let mut edges = 0usize;
        scratch.next.clear();
        // Edges of this layer: all in-edges of every current destination.
        // The frontier vector holds the ENTIRE current destination set in
        // discovery order (seeds first), matching block dst ordering.
        for idx in 0..dst_count {
            let node = scratch.frontier[idx];
            edges += batch.degree(node);
            for &u in batch.neighbors(node) {
                if scratch.mark[u as usize] != v {
                    scratch.mark[u as usize] = v;
                    scratch.next.push(u);
                }
            }
        }
        let new_nodes = scratch.next.len();
        scratch.frontier.extend_from_slice(&scratch.next);
        num_nodes += new_nodes;
        layers_rev.push(LayerCount {
            num_dst: dst_count,
            num_src: num_nodes,
            num_edges: edges,
        });
        dst_count = num_nodes;
    }
    layers_rev.reverse();
    ClosureCounts { layers: layers_rev }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_blocks::{generate_blocks_fast, GenerateOptions};
    use buffalo_graph::generators;
    use buffalo_memsim::estimate::mem_from_counts;
    use buffalo_memsim::{measure, AggregatorKind, GnnShape};
    use buffalo_sampling::BatchSampler;

    #[test]
    fn counts_match_generated_blocks() {
        let g = generators::barabasi_albert(1_500, 6, 0.4, 3).unwrap();
        let seeds: Vec<NodeId> = (0..200).collect();
        let batch = BatchSampler::new(vec![8, 12]).sample(&g, &seeds, 9);
        let blocks = generate_blocks_fast(&batch.graph, 200, 2, GenerateOptions::default());
        let mut scratch = ClosureScratch::default();
        let counts = closure_counts(&batch.graph, &(0..200).collect::<Vec<_>>(), 2, &mut scratch);
        assert_eq!(counts.layers.len(), blocks.len());
        for (c, b) in counts.layers.iter().zip(&blocks) {
            assert_eq!(c.num_dst, b.num_dst(), "dst mismatch");
            assert_eq!(c.num_src, b.num_src(), "src mismatch");
            assert_eq!(c.num_edges, b.num_edges(), "edge mismatch");
        }
        // And therefore the count-based memory estimate is exact.
        let shape = GnnShape::new(64, 32, 2, 8, AggregatorKind::Lstm);
        assert_eq!(
            mem_from_counts(&counts, &shape),
            measure::training_memory(&blocks, &shape).total()
        );
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let g = generators::barabasi_albert(500, 4, 0.2, 1).unwrap();
        let batch = BatchSampler::new(vec![5]).sample(&g, &[0, 1, 2, 3], 2);
        let mut scratch = ClosureScratch::default();
        let a = closure_counts(&batch.graph, &[0, 1], 1, &mut scratch);
        let b = closure_counts(&batch.graph, &[2], 1, &mut scratch);
        let a2 = closure_counts(&batch.graph, &[0, 1], 1, &mut scratch);
        assert_eq!(a, a2, "scratch reuse must not change results");
        assert_eq!(b.layers[0].num_dst, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn subset_closure_is_smaller() {
        let g = generators::barabasi_albert(2_000, 5, 0.3, 7).unwrap();
        let seeds: Vec<NodeId> = (0..100).collect();
        let batch = BatchSampler::new(vec![6, 6]).sample(&g, &seeds, 5);
        let mut scratch = ClosureScratch::default();
        let all = closure_counts(&batch.graph, &seeds, 2, &mut scratch);
        let half = closure_counts(&batch.graph, &(0..50).collect::<Vec<_>>(), 2, &mut scratch);
        assert!(half.layers[0].num_src <= all.layers[0].num_src);
        assert!(half.layers[1].num_edges <= all.layers[1].num_edges);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_zero_depth() {
        let g = buffalo_graph::CsrGraph::empty(3);
        let mut scratch = ClosureScratch::default();
        let _ = closure_counts(&g, &[0], 0, &mut scratch);
    }
}
