//! The Buffalo Scheduler (Algorithm 3).

use crate::bucket::{degree_bucketing_of, detect_explosion, split_explosion_bucket, DegreeBucket};
use crate::closure::{closure_counts, ClosureScratch};
use crate::grouping::{mem_balanced_grouping, BucketEntry};
use buffalo_graph::{CsrGraph, NodeId};
use buffalo_memsim::estimate::{mem_from_counts, BucketStats};
use buffalo_memsim::GnnShape;
use std::fmt;
use std::time::{Duration, Instant};

/// Tunables for [`BuffaloScheduler`].
#[derive(Debug, Clone, Copy)]
pub struct SchedulerOptions {
    /// Maximum number of bucket groups to try before giving up
    /// (Algorithm 3's `K_max`).
    pub k_max: usize,
    /// Explosion detection threshold: a bucket explodes when its volume
    /// exceeds `explosion_factor ×` the mean volume of the other buckets.
    pub explosion_factor: f64,
    /// After the Eq.-2 grouping succeeds, re-validate every group with an
    /// exact union-closure memory computation and retry with `K + 1` on
    /// violation. One extra batch traversal per `K`; guarantees the plan
    /// never OOMs from estimator under-prediction.
    pub validate_exact: bool,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            k_max: 256,
            explosion_factor: 2.0,
            validate_exact: true,
        }
    }
}

/// A scheduling result: `K` bucket groups, each a list of output-node
/// (seed) local ids forming one micro-batch.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    /// Seed local ids per micro-batch.
    pub groups: Vec<Vec<NodeId>>,
    /// Redundancy-aware memory estimate per group, bytes.
    pub group_estimates: Vec<u64>,
    /// The `K` that satisfied the constraint.
    pub k: usize,
    /// Whether the explosion bucket was split.
    pub split_explosion: bool,
    /// Wall-clock time the scheduler spent (the "Buffalo scheduling"
    /// component of Figure 11).
    pub scheduling_time: Duration,
}

impl SchedulePlan {
    /// Total number of output nodes across all groups.
    pub fn total_outputs(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Largest relative imbalance between group estimates (Figure 14).
    pub fn imbalance(&self) -> f64 {
        let max = self.group_estimates.iter().copied().max().unwrap_or(0);
        let min = self.group_estimates.iter().copied().min().unwrap_or(0);
        if max == 0 {
            0.0
        } else {
            (max - min) as f64 / max as f64
        }
    }
}

/// Scheduling failure: no `K ≤ K_max` satisfied the memory constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleError {
    /// The constraint that could not be met, bytes.
    pub mem_constraint: u64,
    /// The `K_max` that was exhausted.
    pub k_max: usize,
    /// Smallest group estimate seen at `K_max`, bytes — how far off the
    /// best attempt was.
    pub best_max_group: u64,
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no grouping within {} bytes found up to K={} (best max group {})",
            self.mem_constraint, self.k_max, self.best_max_group
        )
    }
}

impl std::error::Error for ScheduleError {}

/// Algorithm 3: schedules the degree buckets of a sampled batch into
/// memory-balanced bucket groups.
///
/// # Examples
///
/// ```
/// use buffalo_graph::generators;
/// use buffalo_sampling::BatchSampler;
/// use buffalo_bucketing::BuffaloScheduler;
/// use buffalo_memsim::{AggregatorKind, GnnShape};
///
/// let g = generators::barabasi_albert(2_000, 8, 0.4, 1).unwrap();
/// let seeds: Vec<u32> = (0..500).collect();
/// let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 2);
/// let shape = GnnShape::new(128, 128, 2, 10, AggregatorKind::Lstm);
/// let scheduler = BuffaloScheduler::new(shape, vec![10, 25], 0.3);
/// let plan = scheduler
///     .schedule(&batch.graph, batch.num_seeds, 256 << 20)
///     .unwrap();
/// assert!(plan.k >= 1);
/// assert_eq!(plan.total_outputs(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct BuffaloScheduler {
    shape: GnnShape,
    fanouts: Vec<usize>,
    clustering: f64,
    options: SchedulerOptions,
}

impl BuffaloScheduler {
    /// Creates a scheduler for a model `shape`, sampling `fanouts` (output
    /// layer first; `fanouts[0]` doubles as the cut-off degree `F`), and
    /// the graph's average clustering coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts.len() != shape.num_layers` or `fanouts` is empty.
    pub fn new(shape: GnnShape, fanouts: Vec<usize>, clustering: f64) -> Self {
        assert!(!fanouts.is_empty(), "need at least one fanout");
        assert_eq!(
            fanouts.len(),
            shape.num_layers,
            "fanouts must cover every layer"
        );
        BuffaloScheduler {
            shape,
            fanouts,
            clustering,
            options: SchedulerOptions::default(),
        }
    }

    /// Replaces the default [`SchedulerOptions`].
    pub fn with_options(mut self, options: SchedulerOptions) -> Self {
        self.options = options;
        self
    }

    /// The cut-off degree `F` (= the output-layer fanout).
    pub fn cutoff(&self) -> usize {
        self.fanouts[0]
    }

    fn entry_for(
        &self,
        batch: &CsrGraph,
        bucket: crate::bucket::DegreeBucket,
        scratch: &mut ClosureScratch,
    ) -> BucketEntry {
        let counts = closure_counts(batch, &bucket.nodes, self.shape.num_layers, scratch);
        let stats = BucketStats {
            degree: bucket.degree,
            num_output: bucket.volume(),
            num_input: counts.output_layer_inputs(),
        };
        // Per-bucket estimates exclude the model's own footprint: every
        // micro-batch pays for parameters exactly once, so the grouping
        // carries them as a fixed per-group cost instead.
        let mem_estimate =
            mem_from_counts(&counts, &self.shape).saturating_sub(self.shape.parameter_bytes());
        BucketEntry {
            bucket,
            stats,
            mem_estimate,
        }
    }

    /// Exact union-closure memory of a group of entry indices.
    fn exact_group_mem(
        &self,
        batch: &CsrGraph,
        entries: &[BucketEntry],
        members: &[usize],
        scratch: &mut ClosureScratch,
    ) -> u64 {
        if members.is_empty() {
            return 0;
        }
        let seeds: Vec<NodeId> = members
            .iter()
            .flat_map(|&i| entries[i].bucket.nodes.iter().copied())
            .collect();
        let counts = closure_counts(batch, &seeds, self.shape.num_layers, scratch);
        mem_from_counts(&counts, &self.shape)
    }

    /// Runs Algorithm 3 over the sampled `batch` graph whose first
    /// `num_seeds` local ids are output nodes, against `mem_constraint`
    /// bytes of device memory.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if no `K ≤ K_max` fits.
    pub fn schedule(
        &self,
        batch: &CsrGraph,
        num_seeds: usize,
        mem_constraint: u64,
    ) -> Result<SchedulePlan, ScheduleError> {
        let all_seeds: Vec<NodeId> = (0..num_seeds as NodeId).collect();
        self.schedule_impl(batch, &all_seeds, mem_constraint, 1)
    }

    /// Re-schedules just one offending group's seeds into at least two
    /// smaller groups. This is the recovery path after an execution-time
    /// OOM: the plan-time estimate admitted the group but the device
    /// refused it, so the `K = 1` fast path is skipped — keeping the group
    /// whole would reproduce the same failure.
    ///
    /// The returned groups partition `seeds` exactly, so a trainer that
    /// swaps them in for the failed micro-batch still trains every seed
    /// exactly once per iteration.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if no `K ≤ K_max` fits.
    pub fn resplit_group(
        &self,
        batch: &CsrGraph,
        seeds: &[NodeId],
        mem_constraint: u64,
    ) -> Result<SchedulePlan, ScheduleError> {
        self.schedule_impl(batch, seeds, mem_constraint, 2)
    }

    fn schedule_impl(
        &self,
        batch: &CsrGraph,
        all_seeds: &[NodeId],
        mem_constraint: u64,
        min_k: usize,
    ) -> Result<SchedulePlan, ScheduleError> {
        // lint:allow(wallclock-taint): plan-timing telemetry; the plan itself is clock-free (suppresses chain: BuffaloScheduler::schedule_impl → Instant::now)
        let start = Instant::now();
        let base = degree_bucketing_of(batch, all_seeds, self.cutoff());
        let explosion = detect_explosion(&base, self.options.explosion_factor);
        let mut scratch = ClosureScratch::default();
        let mut best_max_group = u64::MAX;
        // Fast path and lower bound: one whole-batch closure tells us both
        // whether K = 1 suffices (Algorithm 3's "treat the original
        // subgraph as the micro-batch") and the smallest K worth trying —
        // the groups cover every seed, so their exact memories sum to at
        // least the whole-batch footprint.
        let whole_counts = closure_counts(batch, all_seeds, self.shape.num_layers, &mut scratch);
        let whole_mem = mem_from_counts(&whole_counts, &self.shape);
        if min_k <= 1 && whole_mem <= mem_constraint {
            return Ok(SchedulePlan {
                groups: vec![all_seeds.to_vec()],
                group_estimates: vec![whole_mem],
                k: 1,
                split_explosion: false,
                scheduling_time: start.elapsed(),
            });
        }
        if min_k > 1 && all_seeds.len() < min_k {
            // Dead end: fewer seeds than the required group count can
            // never partition into `min_k` non-empty micro-batches — a
            // single-seed group that the device refused is irreducible.
            // Without this guard the K loop either "succeeds" with empty
            // groups (handing the refused group back whole, re-triggering
            // the same OOM) or fails identically at every K; surface the
            // structured error at once so the recovery ladder falls to its
            // next rung.
            return Err(ScheduleError {
                mem_constraint,
                k_max: self.options.k_max,
                best_max_group: whole_mem,
            });
        }
        // Parameters are an irreducible per-micro-batch cost; K planning
        // works in the remaining activation budget.
        let param_bytes = self.shape.parameter_bytes();
        if mem_constraint <= param_bytes {
            return Err(ScheduleError {
                mem_constraint,
                k_max: self.options.k_max,
                best_max_group: param_bytes,
            });
        }
        let activation_budget = mem_constraint - param_bytes;
        let k_min =
            (((whole_mem - param_bytes.min(whole_mem)) / activation_budget.max(1)) as usize).max(2);
        if k_min > self.options.k_max {
            // Even a perfect packing cannot satisfy the constraint within
            // K_max groups.
            return Err(ScheduleError {
                mem_constraint,
                k_max: self.options.k_max,
                best_max_group: whole_mem / self.options.k_max as u64,
            });
        }
        // Build the bucket/micro-bucket entry list once — it depends only
        // on the memory constraint, not on K. Splitting is not limited to
        // the explosion bucket (§IV-A: "partitions a bucket, *e.g.*, the
        // bucket that causes the bucket explosion problem"): any bucket
        // whose own micro-batch would overflow the device must be split
        // too. Atoms around an eighth of the budget let the greedy packer
        // even groups out to a few percent (Figure 14's 4–6 % spread).
        let atom_target = (activation_budget / 8).max(1);
        let mut split = false;
        let mut entries: Vec<BucketEntry> = base
            .iter()
            .map(|bucket| self.entry_for(batch, bucket.clone(), &mut scratch))
            .collect();
        let mut i = 0;
        while i < entries.len() {
            if entries[i].mem_estimate > atom_target && entries[i].bucket.volume() > 1 {
                split |= is_explosion_bucket(&base, explosion, entries[i].bucket.degree);
                let parts = ((entries[i].mem_estimate / atom_target) as usize + 1)
                    .clamp(2, entries[i].bucket.volume());
                let replacement: Vec<BucketEntry> =
                    split_explosion_bucket(&entries[i].bucket, parts)
                        .into_iter()
                        .map(|b| self.entry_for(batch, b, &mut scratch))
                        .collect();
                entries.splice(i..=i, replacement);
                // Re-examine from the same index: splits may still be
                // oversized (closure floors shrink sub-linearly).
            } else {
                i += 1;
            }
        }
        let mut k = k_min;
        while k <= self.options.k_max {
            let outcome =
                mem_balanced_grouping(&entries, k, mem_constraint, self.clustering, param_bytes);
            let max_group = outcome.group_estimates.iter().copied().max().unwrap_or(0);
            best_max_group = best_max_group.min(max_group);
            if !outcome.success {
                // Jump K geometrically toward feasibility instead of the
                // paper's `K + 1` (an optimization that preserves the
                // result: any skipped K would have failed the same way).
                k = next_k(k, max_group, mem_constraint);
                continue;
            }
            {
                let mut member_groups = outcome.groups.clone();
                if self.options.validate_exact {
                    let mut exact: Vec<u64> = member_groups
                        .iter()
                        .map(|g| self.exact_group_mem(batch, &entries, g, &mut scratch))
                        .collect();
                    // Exact-balance refinement: Eq. 2 balances *estimates*;
                    // actual union closures can still diverge because
                    // overlap varies per group. Move the lightest bucket
                    // out of the heaviest group while it lowers the max.
                    // This runs on the re-split recovery path, so extremum
                    // selection is panic-free: `argmax_last`/`argmin_first`
                    // mirror `max_by_key`/`min_by_key` tie-breaking (last
                    // max, first min — plan bit-identity depends on it)
                    // and return `None` only for empty slices, which the
                    // grouping never produces (`k >= 1` groups).
                    for _ in 0..12 {
                        let (Some(hi), Some(lo)) = (argmax_last(&exact), argmin_first(&exact))
                        else {
                            break;
                        };
                        if hi == lo
                            || member_groups[hi].len() < 2
                            || exact[hi].saturating_sub(exact[lo]) < exact[hi] / 20
                        {
                            break;
                        }
                        let lightest: Vec<u64> = member_groups[hi]
                            .iter()
                            .map(|&e| entries[e].mem_estimate)
                            .collect();
                        let Some(pos) = argmin_first(&lightest) else {
                            break;
                        };
                        let candidate = member_groups[hi][pos];
                        let mut new_hi_members = member_groups[hi].clone();
                        new_hi_members.remove(pos);
                        let mut new_lo_members = member_groups[lo].clone();
                        new_lo_members.push(candidate);
                        let new_hi =
                            self.exact_group_mem(batch, &entries, &new_hi_members, &mut scratch);
                        let new_lo =
                            self.exact_group_mem(batch, &entries, &new_lo_members, &mut scratch);
                        if new_hi.max(new_lo) >= exact[hi] {
                            break;
                        }
                        member_groups[hi] = new_hi_members;
                        member_groups[lo] = new_lo_members;
                        exact[hi] = new_hi;
                        exact[lo] = new_lo;
                    }
                    let worst = exact.iter().copied().max().unwrap_or(0);
                    if worst > mem_constraint {
                        best_max_group = best_max_group.min(worst);
                        k = next_k(k, worst, mem_constraint);
                        continue;
                    }
                }
                let groups: Vec<Vec<NodeId>> = member_groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .flat_map(|&i| entries[i].bucket.nodes.iter().copied())
                            .collect()
                    })
                    .collect();
                return Ok(SchedulePlan {
                    groups,
                    group_estimates: outcome.group_estimates,
                    k,
                    split_explosion: split,
                    scheduling_time: start.elapsed(),
                });
            }
        }
        Err(ScheduleError {
            mem_constraint,
            k_max: self.options.k_max,
            best_max_group,
        })
    }
}

/// Index of the maximum value, taking the **last** maximum on ties —
/// exactly `Iterator::max_by_key` semantics, without its panic-prone
/// `unwrap` at the call site. `None` only when `values` is empty.
fn argmax_last(values: &[u64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some(b) if values[b] > v => {}
            _ => best = Some(i),
        }
    }
    best
}

/// Index of the minimum value, taking the **first** minimum on ties —
/// exactly `Iterator::min_by_key` semantics. `None` only when `values`
/// is empty.
fn argmin_first(values: &[u64]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            Some(b) if values[b] <= v => {}
            _ => best = Some(i),
        }
    }
    best
}

/// Whether a bucket with `degree` is the flagged explosion bucket. The
/// previous sentinel encoding (`Some(position().unwrap_or(usize::MAX)) ==
/// explosion`) let a degree that is absent from `base` masquerade as the
/// index `usize::MAX`; a direct match keeps "no explosion" and "bucket not
/// found" unambiguous.
fn is_explosion_bucket(base: &[DegreeBucket], explosion: Option<usize>, degree: usize) -> bool {
    match explosion {
        Some(ex) => base[ex].degree == degree,
        None => false,
    }
}

/// Next K to try after a failure whose heaviest group measured
/// `worst` bytes against `constraint`: scale K by the violation ratio,
/// advancing at least one but at most doubling — group memory shrinks
/// sub-linearly in K when micro-batch closures saturate, so an unbounded
/// jump would overshoot straight past `K_max` on small dense graphs.
fn next_k(k: usize, worst: u64, constraint: u64) -> usize {
    let ratio = (worst as f64 / constraint.max(1) as f64).min(2.0);
    ((k as f64 * ratio).ceil() as usize).max(k + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::generators;
    use buffalo_memsim::AggregatorKind;
    use buffalo_sampling::BatchSampler;

    fn sample_batch() -> (buffalo_sampling::Batch, f64) {
        let g = generators::barabasi_albert(3_000, 8, 0.5, 3).unwrap();
        let c = buffalo_graph::stats::clustering_coefficient_exact(&g);
        let seeds: Vec<NodeId> = (0..800).collect();
        let batch = BatchSampler::new(vec![10, 25]).sample(&g, &seeds, 5);
        (batch, c)
    }

    fn scheduler(c: f64) -> BuffaloScheduler {
        let shape = GnnShape::new(128, 128, 2, 16, AggregatorKind::Lstm);
        BuffaloScheduler::new(shape, vec![10, 25], c)
    }

    #[test]
    fn huge_budget_yields_single_group() {
        let (batch, c) = sample_batch();
        let plan = scheduler(c)
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap();
        assert_eq!(plan.k, 1);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.total_outputs(), 800);
        assert!(!plan.split_explosion);
    }

    #[test]
    fn tight_budget_forces_more_groups() {
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let loose = sched
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap();
        // Find a budget that forces splitting: half the single-group max.
        let single = loose.group_estimates[0];
        let plan = sched
            .schedule(&batch.graph, batch.num_seeds, single / 3)
            .unwrap();
        assert!(plan.k > 1, "expected multiple groups, got K={}", plan.k);
        assert_eq!(plan.total_outputs(), 800);
        for &e in &plan.group_estimates {
            assert!(e <= single / 3);
        }
    }

    #[test]
    fn groups_partition_the_seeds() {
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let single = sched
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap()
            .group_estimates[0];
        let plan = sched
            .schedule(&batch.graph, batch.num_seeds, single / 4)
            .unwrap();
        let mut all: Vec<NodeId> = plan.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..800).collect::<Vec<_>>());
    }

    #[test]
    fn impossible_budget_errors() {
        let (batch, c) = sample_batch();
        let sched = scheduler(c).with_options(SchedulerOptions {
            k_max: 8,
            explosion_factor: 2.0,
            validate_exact: true,
        });
        let err = sched
            .schedule(&batch.graph, batch.num_seeds, 1)
            .unwrap_err();
        assert_eq!(err.k_max, 8);
        assert!(err.best_max_group > 1);
        assert!(err.to_string().contains("K=8"));
    }

    #[test]
    fn power_law_batch_triggers_explosion_split() {
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let single = sched
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap()
            .group_estimates[0];
        let plan = sched
            .schedule(&batch.graph, batch.num_seeds, single / 3)
            .unwrap();
        // BA graphs pile most seeds into the cut-off bucket, so the split
        // must kick in when K > 1.
        assert!(plan.split_explosion);
    }

    #[test]
    fn balanced_groups_have_low_imbalance() {
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let single = sched
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap()
            .group_estimates[0];
        let plan = sched
            .schedule(&batch.graph, batch.num_seeds, single / 4)
            .unwrap();
        assert!(
            plan.imbalance() < 0.35,
            "imbalance {} too high (estimates {:?})",
            plan.imbalance(),
            plan.group_estimates
        );
    }

    #[test]
    #[should_panic(expected = "fanouts")]
    fn rejects_fanout_shape_mismatch() {
        let shape = GnnShape::new(8, 8, 3, 2, AggregatorKind::Mean);
        let _ = BuffaloScheduler::new(shape, vec![10, 25], 0.2);
    }

    #[test]
    fn resplit_partitions_the_offending_group() {
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let single = sched
            .schedule(&batch.graph, batch.num_seeds, u64::MAX)
            .unwrap()
            .group_estimates[0];
        let plan = sched
            .schedule(&batch.graph, batch.num_seeds, single / 3)
            .unwrap();
        // Pretend the heaviest group OOM'd at runtime: re-split it against
        // a tighter constraint.
        let worst = (0..plan.groups.len())
            .max_by_key(|&i| plan.group_estimates[i])
            .unwrap();
        let seeds = &plan.groups[worst];
        let sub = sched
            .resplit_group(&batch.graph, seeds, plan.group_estimates[worst] / 2)
            .unwrap();
        assert!(sub.k >= 2, "re-split must produce at least two groups");
        let mut all: Vec<NodeId> = sub.groups.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut expected = seeds.clone();
        expected.sort_unstable();
        assert_eq!(all, expected, "re-split must partition exactly the seeds");
    }

    #[test]
    fn resplit_never_returns_the_group_whole() {
        // Even when the constraint would admit the whole group, resplit
        // skips the K = 1 fast path: the device already refused this group
        // once, so handing it back unchanged would loop forever.
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let seeds: Vec<NodeId> = (0..100).collect();
        let sub = sched.resplit_group(&batch.graph, &seeds, u64::MAX).unwrap();
        assert!(sub.k >= 2);
        assert_eq!(sub.total_outputs(), 100);
    }

    #[test]
    fn resplit_of_an_irreducible_group_is_a_structured_error() {
        // Satellite regression: a single-seed group cannot split into the
        // two-plus groups `resplit_group` requires. This must surface as
        // an immediate `ScheduleError` — not a plan with empty groups
        // that hands the refused group back whole (re-triggering the same
        // OOM until `max_resplits` runs out), and not a futile walk of
        // every K up to K_max.
        let (batch, c) = sample_batch();
        let sched = scheduler(c);
        let seeds = vec![0 as NodeId];
        // Roomy constraint: splitting is impossible regardless of memory.
        let err = sched
            .resplit_group(&batch.graph, &seeds, u64::MAX)
            .unwrap_err();
        assert_eq!(err.mem_constraint, u64::MAX);
        assert!(
            err.best_max_group > 0,
            "should report the group's footprint"
        );
        // Survivor-budget-sized constraint: same structured dead end.
        let err = sched
            .resplit_group(&batch.graph, &seeds, 1 << 20)
            .unwrap_err();
        assert_eq!(err.mem_constraint, 1 << 20);
        // An empty seed list is equally irreducible.
        assert!(sched.resplit_group(&batch.graph, &[], u64::MAX).is_err());
        // The plain scheduling path is unaffected: one seed, one group.
        let plan = sched.schedule(&batch.graph, 1, u64::MAX).unwrap();
        assert_eq!(plan.k, 1);
    }

    #[test]
    fn argmax_argmin_match_std_tie_breaking() {
        // Plan bit-identity depends on these mirroring max_by_key (last
        // max) and min_by_key (first min) exactly.
        for vals in [
            vec![3u64, 1, 3, 2],
            vec![5, 5, 5],
            vec![1],
            vec![2, 9, 9, 0, 0],
        ] {
            assert_eq!(
                argmax_last(&vals),
                (0..vals.len()).max_by_key(|&i| vals[i]),
                "{vals:?}"
            );
            assert_eq!(
                argmin_first(&vals),
                (0..vals.len()).min_by_key(|&i| vals[i]),
                "{vals:?}"
            );
        }
        assert_eq!(argmax_last(&[]), None);
        assert_eq!(argmin_first(&[]), None);
    }

    #[test]
    fn explosion_sentinel_handles_missing_and_absent_buckets() {
        // Regression for the fragile `Some(position().unwrap_or(usize::MAX))
        // == explosion` comparison: an absent degree must never match, with
        // or without a flagged explosion bucket.
        let base = vec![
            DegreeBucket {
                degree: 1,
                nodes: vec![0],
                split_index: None,
            },
            DegreeBucket {
                degree: 5,
                nodes: vec![1, 2, 3],
                split_index: None,
            },
        ];
        assert!(is_explosion_bucket(&base, Some(1), 5));
        assert!(!is_explosion_bucket(&base, Some(1), 1));
        // Degree absent from `base`: the old encoding compared
        // Some(usize::MAX) against the explosion index.
        assert!(!is_explosion_bucket(&base, Some(1), 999));
        assert!(!is_explosion_bucket(&base, None, 999));
        assert!(!is_explosion_bucket(&base, None, 5));
    }
}
