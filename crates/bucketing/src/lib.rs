//! Degree bucketing, bucket splitting/grouping, and the Buffalo scheduler.
//!
//! This crate is the paper's primary contribution (§IV):
//!
//! * [`degree_bucketing`] — classic cut-off bucketing (§II-C, Figure 3):
//!   output nodes with sampled degree `d < F` go into the degree-`d`
//!   bucket; all nodes with degree `≥ F` share the degree-`F` bucket. On
//!   power-law graphs that last bucket *explodes* (Figure 4).
//! * [`detect_explosion`] / [`split_explosion_bucket`] — find the
//!   explosion and split it into `K` *micro-buckets* with roughly equal
//!   output-node counts (Algorithm 3, line 5).
//! * [`mem_balanced_grouping`] — the greedy load-balanced bin packing of
//!   Algorithm 4: sort buckets by estimated memory descending, place each
//!   into the currently-lightest group, validate every group against the
//!   memory constraint with the redundancy-aware estimator.
//! * [`BuffaloScheduler`] — Algorithm 3: try `K = 1, 2, …, K_max`,
//!   splitting and regrouping until every bucket group fits the budget.
//!
//! The scheduler never touches model weights — its output is a
//! [`SchedulePlan`]: a list of bucket groups, each a set of output-node
//! (seed) local ids that one micro-batch will train.

#![warn(missing_docs)]

mod bucket;
mod closure;
mod grouping;
mod scheduler;

pub use bucket::{
    degree_bucketing, degree_bucketing_of, detect_explosion, split_explosion_bucket, DegreeBucket,
};
pub use closure::{closure_counts, ClosureScratch};
pub use grouping::{mem_balanced_grouping, BucketEntry, GroupingOutcome};
pub use scheduler::{BuffaloScheduler, ScheduleError, SchedulePlan, SchedulerOptions};
