//! Degree buckets: construction, explosion detection, and splitting.

use buffalo_graph::{CsrGraph, NodeId};
use buffalo_memsim::estimate::BucketStats;

/// A degree bucket at the output layer: the seed (output) nodes sharing a
/// sampled in-degree, or — for the cut-off bucket — all seeds with degree
/// `>= F`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeBucket {
    /// The degree label. For the cut-off bucket this is `F` even though
    /// member degrees may exceed it; for micro-buckets produced by
    /// splitting it stays the parent's label.
    pub degree: usize,
    /// Batch-local seed ids in this bucket.
    pub nodes: Vec<NodeId>,
    /// `Some(i)` when this bucket is the `i`-th micro-bucket of a split
    /// explosion bucket; `None` for ordinary buckets.
    pub split_index: Option<usize>,
}

impl DegreeBucket {
    /// Number of output nodes (the paper's *bucket volume*).
    pub fn volume(&self) -> usize {
        self.nodes.len()
    }

    /// Computes the bucket's [`BucketStats`] against the sampled batch
    /// graph: `O` = volume, `D` = degree label, `I` = distinct in-neighbors
    /// of the bucket's nodes. `scratch` must be a zeroed bitmap of at least
    /// `batch.num_nodes()` entries; it is returned zeroed.
    pub fn stats(&self, batch: &CsrGraph, scratch: &mut Vec<bool>) -> BucketStats {
        scratch.resize(batch.num_nodes(), false);
        let mut inputs = 0usize;
        let mut touched: Vec<NodeId> = Vec::new();
        for &v in &self.nodes {
            for &u in batch.neighbors(v) {
                if !scratch[u as usize] {
                    scratch[u as usize] = true;
                    touched.push(u);
                    inputs += 1;
                }
            }
        }
        for t in touched {
            scratch[t as usize] = false;
        }
        BucketStats {
            degree: self.degree,
            num_output: self.volume(),
            num_input: inputs,
        }
    }
}

/// Classic degree bucketing with cut-off `F` (§II-C).
///
/// Buckets the first `num_seeds` local ids of `batch` by their sampled
/// in-degree. Returns buckets ordered by degree `1, 2, …, F`; empty degrees
/// are omitted. Nodes with degree 0 (no sampled neighbors) are placed in a
/// degree-0 bucket so no output node is lost — this is the case Betty
/// cannot handle on OGBN-papers ("cannot process nodes with zero
/// in-edges", §V-B).
///
/// # Panics
///
/// Panics if `cutoff == 0` or `num_seeds > batch.num_nodes()`.
pub fn degree_bucketing(batch: &CsrGraph, num_seeds: usize, cutoff: usize) -> Vec<DegreeBucket> {
    assert!(
        num_seeds <= batch.num_nodes(),
        "num_seeds exceeds batch size"
    );
    let seeds: Vec<NodeId> = (0..num_seeds as NodeId).collect();
    degree_bucketing_of(batch, &seeds, cutoff)
}

/// [`degree_bucketing`] over an arbitrary seed subset instead of the
/// `0..num_seeds` prefix. Used by recovery re-splitting, which re-buckets
/// just the seeds of one offending group.
///
/// # Panics
///
/// Panics if `cutoff == 0` or any seed id is out of range for `batch`.
pub fn degree_bucketing_of(batch: &CsrGraph, seeds: &[NodeId], cutoff: usize) -> Vec<DegreeBucket> {
    assert!(cutoff > 0, "cut-off degree must be positive");
    let mut by_degree: Vec<Vec<NodeId>> = vec![Vec::new(); cutoff + 1];
    for &v in seeds {
        let d = batch.degree(v).min(cutoff);
        by_degree[d].push(v);
    }
    by_degree
        .into_iter()
        .enumerate()
        .filter(|(_, nodes)| !nodes.is_empty())
        .map(|(degree, nodes)| DegreeBucket {
            degree,
            nodes,
            split_index: None,
        })
        .collect()
}

/// Detects bucket explosion (Algorithm 3, line 4): returns the index of
/// the largest bucket when its volume exceeds `factor ×` the mean volume
/// of the *other* buckets. A lone bucket holding more than one node is the
/// extreme explosion (every output hit the fanout cap) and is always
/// flagged. With the paper's long-tail degree distributions the flagged
/// bucket is the cut-off bucket; the detector is generic anyway.
pub fn detect_explosion(buckets: &[DegreeBucket], factor: f64) -> Option<usize> {
    let (idx, largest) = buckets.iter().enumerate().max_by_key(|(_, b)| b.volume())?;
    if buckets.len() == 1 {
        return (largest.volume() > 1).then_some(idx);
    }
    let total: usize = buckets.iter().map(DegreeBucket::volume).sum();
    let rest_mean = (total - largest.volume()) as f64 / (buckets.len() - 1) as f64;
    (largest.volume() as f64 > factor * rest_mean).then_some(idx)
}

/// *SplitExplosionBucket* (Algorithm 3, line 5): evenly splits `bucket`
/// into `k` micro-buckets with output-node counts differing by at most 1.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn split_explosion_bucket(bucket: &DegreeBucket, k: usize) -> Vec<DegreeBucket> {
    assert!(k > 0, "cannot split into zero micro-buckets");
    let k = k.min(bucket.volume().max(1));
    let n = bucket.volume();
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(DegreeBucket {
            degree: bucket.degree,
            nodes: bucket.nodes[start..start + len].to_vec(),
            split_index: Some(i),
        });
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::GraphBuilder;
    use proptest::prelude::*;

    /// Batch where seed degrees are 0,1,2,3,3,5 (local ids 0..6, sources 6..).
    fn degree_ladder() -> CsrGraph {
        let mut b = GraphBuilder::new(20);
        let mut src = 6u32;
        for (seed, deg) in [(0u32, 0usize), (1, 1), (2, 2), (3, 3), (4, 3), (5, 5)] {
            for _ in 0..deg {
                b.add_edge(src, seed);
                src += 1;
            }
        }
        b.build_directed()
    }

    #[test]
    fn buckets_group_by_degree_with_cutoff() {
        let g = degree_ladder();
        let buckets = degree_bucketing(&g, 6, 3);
        // degrees: 0,1,2 individual; 3+ cut off into degree-3 bucket.
        let degrees: Vec<usize> = buckets.iter().map(|b| b.degree).collect();
        assert_eq!(degrees, vec![0, 1, 2, 3]);
        let cut = buckets.last().unwrap();
        assert_eq!(cut.volume(), 3); // seeds 3, 4 (deg 3) and 5 (deg 5)
        assert!(cut.nodes.contains(&5));
    }

    #[test]
    fn all_seeds_covered_exactly_once() {
        let g = degree_ladder();
        let buckets = degree_bucketing(&g, 6, 4);
        let mut all: Vec<NodeId> = buckets.iter().flat_map(|b| b.nodes.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_degree_nodes_get_their_own_bucket() {
        let g = degree_ladder();
        let buckets = degree_bucketing(&g, 6, 3);
        assert_eq!(buckets[0].degree, 0);
        assert_eq!(buckets[0].nodes, vec![0]);
    }

    #[test]
    fn bucketing_of_subset_matches_prefix_bucketing() {
        let g = degree_ladder();
        // Subset {1, 3, 5}: degrees 1, 3, 5 → cutoff 3 merges 3 and 5.
        let buckets = degree_bucketing_of(&g, &[1, 3, 5], 3);
        let as_map: Vec<(usize, Vec<NodeId>)> = buckets
            .iter()
            .map(|b| (b.degree, b.nodes.clone()))
            .collect();
        assert_eq!(as_map, vec![(1, vec![1]), (3, vec![3, 5])]);
        // The full prefix agrees with the classic entry point.
        let all: Vec<NodeId> = (0..6).collect();
        assert_eq!(degree_bucketing_of(&g, &all, 3), degree_bucketing(&g, 6, 3));
    }

    #[test]
    fn stats_count_distinct_inputs() {
        let g = degree_ladder();
        let buckets = degree_bucketing(&g, 6, 3);
        let mut scratch = Vec::new();
        let cut = buckets.last().unwrap();
        let s = cut.stats(&g, &mut scratch);
        assert_eq!(s.num_output, 3);
        assert_eq!(s.degree, 3);
        // Sources are all distinct in the ladder: 3 + 3 + 5 = 11 inputs.
        assert_eq!(s.num_input, 11);
        // Scratch bitmap must be returned clean.
        assert!(scratch.iter().all(|&x| !x));
    }

    #[test]
    fn stats_dedup_shared_inputs() {
        // Two seeds sharing one source.
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0);
        b.add_edge(2, 1);
        let g = b.build_directed();
        let buckets = degree_bucketing(&g, 2, 5);
        let mut scratch = Vec::new();
        let s = buckets[0].stats(&g, &mut scratch);
        assert_eq!(s.num_output, 2);
        assert_eq!(s.num_input, 1);
    }

    #[test]
    fn explosion_detected_on_skew() {
        let buckets = vec![
            DegreeBucket {
                degree: 1,
                nodes: vec![0, 1],
                split_index: None,
            },
            DegreeBucket {
                degree: 2,
                nodes: vec![2, 3],
                split_index: None,
            },
            DegreeBucket {
                degree: 10,
                nodes: (4..104).collect(),
                split_index: None,
            },
        ];
        assert_eq!(detect_explosion(&buckets, 2.0), Some(2));
    }

    #[test]
    fn no_explosion_when_balanced() {
        let buckets: Vec<DegreeBucket> = (0..5)
            .map(|d| DegreeBucket {
                degree: d,
                nodes: vec![d as NodeId * 2, d as NodeId * 2 + 1],
                split_index: None,
            })
            .collect();
        assert_eq!(detect_explosion(&buckets, 2.0), None);
    }

    #[test]
    fn single_large_bucket_is_the_extreme_explosion() {
        // All outputs hit the fanout cap (one bucket): must be flagged so
        // the scheduler can split it.
        let buckets = vec![DegreeBucket {
            degree: 10,
            nodes: (0..1000).collect(),
            split_index: None,
        }];
        assert_eq!(detect_explosion(&buckets, 2.0), Some(0));
        // But a single singleton bucket cannot be split further.
        let tiny = vec![DegreeBucket {
            degree: 1,
            nodes: vec![0],
            split_index: None,
        }];
        assert_eq!(detect_explosion(&tiny, 2.0), None);
    }

    #[test]
    fn split_is_even_and_complete() {
        let bucket = DegreeBucket {
            degree: 10,
            nodes: (0..10).collect(),
            split_index: None,
        };
        let micro = split_explosion_bucket(&bucket, 3);
        assert_eq!(micro.len(), 3);
        let sizes: Vec<usize> = micro.iter().map(DegreeBucket::volume).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut all: Vec<NodeId> = micro.iter().flat_map(|m| m.nodes.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        for (i, m) in micro.iter().enumerate() {
            assert_eq!(m.split_index, Some(i));
            assert_eq!(m.degree, 10);
        }
    }

    #[test]
    fn split_caps_at_volume() {
        let bucket = DegreeBucket {
            degree: 4,
            nodes: vec![1, 2],
            split_index: None,
        };
        let micro = split_explosion_bucket(&bucket, 10);
        assert_eq!(micro.len(), 2);
    }

    #[test]
    fn reproduces_the_papers_figure_3_example() {
        // Figure 3: twelve nodes whose degrees are
        //   {1: {9}, 2: {0,1,3,6,7,10}, 3: {11}, 4: {4,8}, 5: {2,5}}
        // bucketed with cut-off F = 4: degrees 1-3 get their own buckets,
        // degrees 4 and 5 share the cut-off bucket.
        let degree_of = [2usize, 2, 5, 2, 4, 5, 2, 2, 4, 1, 2, 3];
        let mut b = GraphBuilder::new(12 + degree_of.iter().sum::<usize>());
        let mut src = 12u32;
        for (node, &d) in degree_of.iter().enumerate() {
            for _ in 0..d {
                b.add_edge(src, node as NodeId);
                src += 1;
            }
        }
        let g = b.build_directed();
        let buckets = degree_bucketing(&g, 12, 4);
        let as_map: Vec<(usize, Vec<NodeId>)> = buckets
            .iter()
            .map(|bk| (bk.degree, bk.nodes.clone()))
            .collect();
        assert_eq!(
            as_map,
            vec![
                (1, vec![9]),
                (2, vec![0, 1, 3, 6, 7, 10]),
                (3, vec![11]),
                (4, vec![2, 4, 5, 8]), // degree-4 and degree-5 nodes merged
            ]
        );
        // Figure 7 partitions these into two bucket groups covering all
        // twelve output nodes; any 2-grouping of the buckets does.
        let total: usize = buckets.iter().map(DegreeBucket::volume).sum();
        assert_eq!(total, 12);
    }

    proptest! {
        /// Splitting preserves nodes and balances sizes within 1.
        #[test]
        fn split_properties(n in 1usize..500, k in 1usize..20) {
            let bucket = DegreeBucket {
                degree: 7,
                nodes: (0..n as NodeId).collect(),
                split_index: None,
            };
            let micro = split_explosion_bucket(&bucket, k);
            let total: usize = micro.iter().map(DegreeBucket::volume).sum();
            prop_assert_eq!(total, n);
            let min = micro.iter().map(DegreeBucket::volume).min().unwrap();
            let max = micro.iter().map(DegreeBucket::volume).max().unwrap();
            prop_assert!(max - min <= 1);
        }

        /// Bucketing covers all seeds exactly once for any cutoff.
        #[test]
        fn bucketing_is_a_partition(cutoff in 1usize..12) {
            let g = degree_ladder();
            let buckets = degree_bucketing(&g, 6, cutoff);
            let mut all: Vec<NodeId> = buckets.iter().flat_map(|b| b.nodes.clone()).collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..6).collect::<Vec<NodeId>>());
        }
    }
}
