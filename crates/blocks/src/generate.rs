//! Fast (Buffalo) and checked (Betty-style baseline) block generation.

use crate::block::Block;
use buffalo_graph::{CsrGraph, NodeId};
use std::collections::BTreeMap;

/// Default [`GenerateOptions::parallel_threshold`]: below this many
/// destination rows, gathering goes serial.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 1024;

/// Options for [`generate_blocks_fast`].
#[derive(Debug, Clone, Copy)]
pub struct GenerateOptions {
    /// Worker threads for node-level parallelism. `None` follows the
    /// process-wide [`buffalo_par::ambient`] configuration (the global
    /// `--threads` setting).
    pub threads: Option<usize>,
    /// Minimum destination count before row gathering dispatches to the
    /// shared worker pool; defaults to [`DEFAULT_PARALLEL_THRESHOLD`].
    pub parallel_threshold: usize,
}

impl Default for GenerateOptions {
    fn default() -> Self {
        GenerateOptions {
            threads: None,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
        }
    }
}

fn resolve_threads(opts: &GenerateOptions) -> usize {
    opts.threads
        .unwrap_or_else(|| buffalo_par::ambient().threads)
        .max(1)
}

/// Buffalo's fast block generation (§IV-E).
///
/// `batch_graph` is the sampled subgraph in batch-local ids with
/// in-neighbor rows; local ids `0..num_seeds` are the output nodes.
/// Produces one [`Block`] per layer, ordered **input layer first** (index
/// `0` is the innermost layer, index `depth - 1` the output layer), so a
/// trainer can iterate forward.
///
/// Two properties make this fast relative to the checked baseline:
///
/// 1. Each destination's sources are read *directly from its CSR row* of
///    the sampled subgraph — there is no re-validation against the
///    original graph ("avoiding repeated connection checks").
/// 2. Row gathering is parallel at the node level (std scoped threads
///    over row chunks).
///
/// # Panics
///
/// Panics if `num_seeds` exceeds the node count or `depth == 0`.
pub fn generate_blocks_fast(
    batch_graph: &CsrGraph,
    num_seeds: usize,
    depth: usize,
    opts: GenerateOptions,
) -> Vec<Block> {
    assert!(depth > 0, "depth must be at least 1");
    assert!(
        num_seeds <= batch_graph.num_nodes(),
        "num_seeds exceeds batch size"
    );
    let threads = resolve_threads(&opts);
    let n = batch_graph.num_nodes();
    let mut dst: Vec<NodeId> = (0..num_seeds as NodeId).collect();
    let mut blocks_rev: Vec<Block> = Vec::with_capacity(depth);
    // Scratch position table reused across layers: entries touched in a
    // layer are exactly those of its src_nodes, so only they need reset.
    let mut pos_of: Vec<u32> = vec![u32::MAX; n];
    for _ in 0..depth {
        // Phase 1 (parallel): gather each destination row from CSR.
        let rows: Vec<&[NodeId]> = gather_rows(batch_graph, &dst, threads, opts.parallel_threshold);
        // Phase 2 (sequential): assign source positions in discovery order.
        let mut src_nodes: Vec<NodeId> = dst.clone();
        for (i, &v) in dst.iter().enumerate() {
            pos_of[v as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(dst.len() + 1);
        let mut indices = Vec::new();
        offsets.push(0usize);
        for row in &rows {
            for &u in *row {
                let p = &mut pos_of[u as usize];
                if *p == u32::MAX {
                    *p = src_nodes.len() as u32;
                    src_nodes.push(u);
                }
                indices.push(*p);
            }
            offsets.push(indices.len());
        }
        let block = Block::from_parts(dst, src_nodes, offsets, indices);
        for &v in block.src_nodes() {
            pos_of[v as usize] = u32::MAX;
        }
        dst = block.src_nodes().to_vec();
        blocks_rev.push(block);
    }
    blocks_rev.reverse();
    blocks_rev
}

/// Gathers the CSR row of every destination, chunked over `threads`
/// workers of the shared [`buffalo_par`] pool. Row slices borrow from `g`,
/// so this is pure pointer work — the parallelism pays off when rows must
/// be touched (prefetched) for large batches.
fn gather_rows<'g>(
    g: &'g CsrGraph,
    dst: &[NodeId],
    threads: usize,
    parallel_threshold: usize,
) -> Vec<&'g [NodeId]> {
    if threads <= 1 || dst.len() < parallel_threshold {
        return dst.iter().map(|&v| g.neighbors(v)).collect();
    }
    let chunk = dst.len().div_ceil(threads);
    let mut rows: Vec<&[NodeId]> = vec![&[]; dst.len()];
    let tasks: Vec<buffalo_par::Task<'_>> = dst
        .chunks(chunk)
        .zip(rows.chunks_mut(chunk))
        .map(|(dst_chunk, out_chunk)| -> buffalo_par::Task<'_> {
            Box::new(move || {
                for (o, &v) in out_chunk.iter_mut().zip(dst_chunk) {
                    *o = g.neighbors(v);
                }
            })
        })
        .collect();
    buffalo_par::run_tasks(tasks, threads);
    rows
}

/// Betty-style baseline block generation with repeated connection checks.
///
/// Instead of trusting the sampled subgraph's rows, this path re-derives
/// each destination's sources from the *original* graph: it walks the full
/// (unsampled) neighbor list of the destination's global id, checks each
/// candidate for membership in the batch via a membership index (rebuilt
/// per layer, as Betty rebuilds per micro-batch), and then confirms the edge
/// survived sampling with a binary search in the sampled subgraph. The
/// resulting blocks contain the same edges as [`generate_blocks_fast`]
/// (though source discovery order may differ); only the cost differs —
/// this is the comparison of Figure 12.
///
/// # Panics
///
/// Panics if `global_ids.len() != batch_graph.num_nodes()`, `depth == 0`,
/// or `num_seeds` exceeds the batch size.
pub fn generate_blocks_checked(
    batch_graph: &CsrGraph,
    global_ids: &[NodeId],
    original: &CsrGraph,
    num_seeds: usize,
    depth: usize,
) -> Vec<Block> {
    assert!(depth > 0, "depth must be at least 1");
    assert_eq!(
        global_ids.len(),
        batch_graph.num_nodes(),
        "global id table size mismatch"
    );
    assert!(
        num_seeds <= batch_graph.num_nodes(),
        "num_seeds exceeds batch size"
    );
    let n = batch_graph.num_nodes();
    let mut dst: Vec<NodeId> = (0..num_seeds as NodeId).collect();
    let mut blocks_rev: Vec<Block> = Vec::with_capacity(depth);
    for _ in 0..depth {
        // Betty rebuilds its membership index for every layer of every
        // micro-batch; model that repeated cost faithfully. An ordered map
        // stands in for Betty's hash index — only probed, never iterated,
        // and the nondet-iteration lint keeps hash containers out of the
        // blocks crate entirely.
        let batch_index: BTreeMap<NodeId, NodeId> = global_ids
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local as NodeId))
            .collect();
        let mut pos_of: Vec<u32> = vec![u32::MAX; n];
        let mut src_nodes: Vec<NodeId> = dst.clone();
        for (i, &v) in dst.iter().enumerate() {
            pos_of[v as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(dst.len() + 1);
        let mut indices = Vec::new();
        offsets.push(0usize);
        for &v in &dst {
            let gv = global_ids[v as usize];
            // Repeated connection check: full original neighborhood scan.
            for &gu in original.neighbors(gv) {
                let Some(&lu) = batch_index.get(&gu) else {
                    continue;
                };
                if !batch_graph.has_edge(lu, v) {
                    continue; // edge did not survive sampling
                }
                let p = &mut pos_of[lu as usize];
                if *p == u32::MAX {
                    *p = src_nodes.len() as u32;
                    src_nodes.push(lu);
                }
                indices.push(*p);
            }
            offsets.push(indices.len());
        }
        let block = Block::from_parts(dst, src_nodes, offsets, indices);
        dst = block.src_nodes().to_vec();
        blocks_rev.push(block);
    }
    blocks_rev.reverse();
    blocks_rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::GraphBuilder;

    /// A tiny deterministic "sampled batch": 2 seeds {0,1}, sampled
    /// in-neighbors 0 <- {2,3}, 1 <- {3}, 2 <- {4}, 3 <- {}, 4 <- {}.
    fn tiny_batch() -> CsrGraph {
        let mut b = GraphBuilder::new(5);
        b.extend_edges([(2, 0), (3, 0), (3, 1), (4, 2)]);
        b.build_directed()
    }

    /// Original graph whose edges are a superset of the batch edges (with
    /// global ids equal to local ids for simplicity).
    fn tiny_original() -> CsrGraph {
        let mut b = GraphBuilder::new(6);
        b.extend_edges([(2, 0), (3, 0), (3, 1), (4, 2), (5, 0), (5, 4)]);
        b.build_undirected()
    }

    fn edge_set(block: &Block) -> Vec<(NodeId, NodeId)> {
        let mut es = Vec::new();
        for i in 0..block.num_dst() {
            let d = block.dst_nodes()[i];
            for s in block.srcs_of(i) {
                es.push((d, s));
            }
        }
        es.sort_unstable();
        es
    }

    #[test]
    fn fast_blocks_have_expected_shape() {
        let g = tiny_batch();
        let blocks = generate_blocks_fast(&g, 2, 2, GenerateOptions::default());
        assert_eq!(blocks.len(), 2);
        let out = &blocks[1]; // output layer
        assert_eq!(out.dst_nodes(), &[0, 1]);
        assert_eq!(out.num_src(), 4); // {0,1} ∪ {2,3}
        assert_eq!(out.num_edges(), 3);
        let inner = &blocks[0];
        assert_eq!(inner.dst_nodes(), out.src_nodes());
        assert_eq!(inner.num_src(), 5); // previous ∪ {4}
    }

    #[test]
    fn src_nodes_prefix_invariant_holds() {
        let g = tiny_batch();
        for block in generate_blocks_fast(&g, 2, 2, GenerateOptions::default()) {
            assert_eq!(
                &block.src_nodes()[..block.num_dst()],
                block.dst_nodes(),
                "src prefix must equal dst"
            );
        }
    }

    #[test]
    fn checked_path_produces_same_edges() {
        let batch = tiny_batch();
        let original = tiny_original();
        let globals: Vec<NodeId> = (0..5).collect();
        let fast = generate_blocks_fast(&batch, 2, 2, GenerateOptions::default());
        let checked = generate_blocks_checked(&batch, &globals, &original, 2, 2);
        assert_eq!(fast.len(), checked.len());
        for (f, c) in fast.iter().zip(&checked) {
            assert_eq!(edge_set(f), edge_set(c));
            assert_eq!(f.num_dst(), c.num_dst());
        }
    }

    #[test]
    fn depth_one_produces_single_block() {
        let g = tiny_batch();
        let blocks = generate_blocks_fast(&g, 2, 1, GenerateOptions::default());
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].dst_nodes(), &[0, 1]);
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        // Use a larger random-ish batch to exercise the parallel path.
        let mut b = GraphBuilder::new(3_000);
        for i in 0..3_000u32 {
            for j in 1..=3 {
                b.add_edge((i + j * 7) % 3_000, i);
            }
        }
        let g = b.build_directed();
        let one = generate_blocks_fast(
            &g,
            2_000,
            2,
            GenerateOptions {
                threads: Some(1),
                ..Default::default()
            },
        );
        let four = generate_blocks_fast(
            &g,
            2_000,
            2,
            GenerateOptions {
                threads: Some(4),
                ..Default::default()
            },
        );
        assert_eq!(one, four);
        // A tiny threshold forces the pool path even at this size.
        let pooled = generate_blocks_fast(
            &g,
            2_000,
            2,
            GenerateOptions {
                threads: Some(4),
                parallel_threshold: 1,
            },
        );
        assert_eq!(one, pooled);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn rejects_zero_depth() {
        let g = tiny_batch();
        let _ = generate_blocks_fast(&g, 1, 0, GenerateOptions::default());
    }

    #[test]
    #[should_panic(expected = "num_seeds")]
    fn rejects_too_many_seeds() {
        let g = tiny_batch();
        let _ = generate_blocks_fast(&g, 6, 1, GenerateOptions::default());
    }

    #[test]
    fn in_degrees_match_batch_rows() {
        let g = tiny_batch();
        let blocks = generate_blocks_fast(&g, 2, 1, GenerateOptions::default());
        let out = &blocks[0];
        assert_eq!(out.in_degree(0), 2); // node 0 has sampled in-neighbors {2,3}
        assert_eq!(out.in_degree(1), 1);
    }
}
