//! Reverse (source → destination) edge index for deterministic parallel
//! backward scatters.
//!
//! The serial backward scatter walks destinations in ascending order and
//! adds a per-destination gradient into each of its source rows:
//!
//! ```text
//! for i in 0..num_dst {            // ascending destination rows
//!     for p in src_positions(i) {  // row order
//!         grad_src[p] += g(i)
//!     }
//! }
//! ```
//!
//! Parallelizing *that* loop races on `grad_src[p]`. The [`ReverseIndex`]
//! flips the edges: for each source position `p` it stores the destination
//! rows that touch it, **in the exact order the serial loop visits them**
//! (ascending `i`, duplicates preserved). A kernel that partitions source
//! rows across threads and walks `dsts_of(p)` in order then writes each
//! output row from exactly one thread *and* accumulates each element in
//! the serial order — bit-identical to the sequential scatter for any
//! thread count.

use crate::block::Block;

/// CSR edge index from source position to the destination rows touching it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReverseIndex {
    offsets: Vec<usize>,
    dsts: Vec<u32>,
}

impl ReverseIndex {
    /// Builds the reverse index of `block` by counting sort, preserving
    /// the serial scatter's per-source visit order (ascending destination
    /// row, duplicates kept).
    pub fn new(block: &Block) -> Self {
        let num_src = block.num_src();
        let mut counts = vec![0usize; num_src];
        for i in 0..block.num_dst() {
            for &p in block.src_positions(i) {
                counts[p as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(num_src + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor = offsets[..num_src].to_vec();
        let mut dsts = vec![0u32; total];
        for i in 0..block.num_dst() {
            for &p in block.src_positions(i) {
                let slot = &mut cursor[p as usize];
                dsts[*slot] = i as u32;
                *slot += 1;
            }
        }
        ReverseIndex { offsets, dsts }
    }

    /// Number of source positions indexed.
    pub fn num_src(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of edges (equals the block's edge count).
    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    /// Destination rows whose aggregation reads source position `p`, in
    /// serial scatter order (ascending, duplicates preserved).
    ///
    /// # Panics
    ///
    /// Panics if `p >= num_src()`.
    pub fn dsts_of(&self, p: usize) -> &[u32] {
        &self.dsts[self.offsets[p]..self.offsets[p + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        // dst = [5, 9]; srcs = [5, 9, 2, 3]; 5 <- {9, 2}; 9 <- {2, 3, 5}
        Block::from_parts(
            vec![5, 9],
            vec![5, 9, 2, 3],
            vec![0, 2, 5],
            vec![1, 2, 2, 3, 0],
        )
    }

    #[test]
    fn reverse_of_sample_block() {
        let rev = ReverseIndex::new(&sample_block());
        assert_eq!(rev.num_src(), 4);
        assert_eq!(rev.num_edges(), 5);
        assert_eq!(rev.dsts_of(0), &[1]); // src pos 0 feeds dst row 1
        assert_eq!(rev.dsts_of(1), &[0]);
        assert_eq!(rev.dsts_of(2), &[0, 1]); // ascending dst order
        assert_eq!(rev.dsts_of(3), &[1]);
    }

    #[test]
    fn duplicate_edges_are_preserved() {
        // dst row 0 lists src position 1 twice (multigraph edge).
        let b = Block::from_parts(vec![7], vec![7, 3], vec![0, 3], vec![1, 1, 0]);
        let rev = ReverseIndex::new(&b);
        assert_eq!(rev.dsts_of(1), &[0, 0]);
        assert_eq!(rev.num_edges(), 3);
    }

    #[test]
    fn empty_block_yields_empty_index() {
        let b = Block::from_parts(vec![], vec![], vec![0], vec![]);
        let rev = ReverseIndex::new(&b);
        assert_eq!(rev.num_src(), 0);
        assert_eq!(rev.num_edges(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random valid block: `d` destinations, `s >= d` sources, rows
        /// of random positions (duplicates allowed).
        fn arb_block(seed: u64, d: usize, extra_src: usize, max_deg: usize) -> Block {
            // Tiny deterministic LCG so the proptest shim drives variety
            // through `seed` alone.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = move |bound: usize| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as usize) % bound.max(1)
            };
            let s = d + extra_src;
            let dst: Vec<u32> = (0..d as u32).collect();
            let src: Vec<u32> = (0..s as u32).collect();
            let mut offsets = vec![0usize];
            let mut indices = Vec::new();
            for _ in 0..d {
                let deg = next(max_deg + 1);
                for _ in 0..deg {
                    indices.push(next(s) as u32);
                }
                offsets.push(indices.len());
            }
            Block::from_parts(dst, src, offsets, indices)
        }

        proptest! {
            /// The reverse index holds exactly the block's edge multiset.
            #[test]
            fn edge_multiset_roundtrips(seed in 0u64..200, d in 1usize..12, extra in 0usize..8, deg in 0usize..6) {
                let block = arb_block(seed, d, extra, deg);
                let rev = ReverseIndex::new(&block);
                let mut fwd: Vec<(u32, u32)> = Vec::new();
                for i in 0..block.num_dst() {
                    for &p in block.src_positions(i) {
                        fwd.push((p, i as u32));
                    }
                }
                fwd.sort_unstable();
                let mut bwd: Vec<(u32, u32)> = Vec::new();
                for p in 0..rev.num_src() {
                    prop_assert!(rev.dsts_of(p).windows(2).all(|w| w[0] <= w[1]));
                    for &i in rev.dsts_of(p) {
                        bwd.push((p as u32, i));
                    }
                }
                bwd.sort_unstable();
                prop_assert_eq!(fwd, bwd);
            }

            /// Scatter via the reverse index is bitwise equal to the
            /// serial destination-major scatter.
            #[test]
            fn reverse_scatter_matches_serial(seed in 0u64..200, d in 1usize..12, extra in 0usize..8, deg in 0usize..6) {
                let block = arb_block(seed, d, extra, deg);
                let rev = ReverseIndex::new(&block);
                // Per-destination gradient values with enough spread that
                // reordered float addition would actually differ.
                let g = |i: u32| ((i as f32) + 0.1).exp();
                let mut serial = vec![0.0f32; block.num_src()];
                for i in 0..block.num_dst() {
                    for &p in block.src_positions(i) {
                        serial[p as usize] += g(i as u32);
                    }
                }
                let mut via_rev = vec![0.0f32; block.num_src()];
                for (p, out) in via_rev.iter_mut().enumerate() {
                    for &i in rev.dsts_of(p) {
                        *out += g(i);
                    }
                }
                prop_assert_eq!(serial, via_rev);
            }
        }
    }
}
