//! The prepared-block handle: everything the device stage of a pipelined
//! trainer needs for one micro-batch, produced entirely on the CPU.
//!
//! A [`PreparedBlocks`] is assembled by the **Prepare** stage (block
//! generation, then feature/label gather) and handed — by move, across a
//! channel — to the **Execute** stage. All payloads are owned flat buffers,
//! so the handoff never copies feature data, and
//! [`into_parts`](PreparedBlocks::into_parts) releases ownership to the
//! consumer the same way.

use crate::block::Block;
use crate::generate::{generate_blocks_fast, GenerateOptions};
use buffalo_graph::{CsrGraph, NodeId};
use std::time::Instant;

/// One micro-batch, fully prepared for device execution: its per-layer
/// blocks plus gathered input features and output labels.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedBlocks {
    blocks: Vec<Block>,
    features: Vec<f32>,
    feat_dim: usize,
    labels: Vec<u32>,
    output_globals: Vec<NodeId>,
    block_gen_seconds: f64,
    gather_seconds: f64,
}

impl PreparedBlocks {
    /// Runs fast block generation for a (micro-)batch subgraph, timing it.
    /// Features and labels start empty; attach them with
    /// [`set_features`](Self::set_features) / [`set_labels`](Self::set_labels).
    ///
    /// # Panics
    ///
    /// Propagates [`generate_blocks_fast`]'s panics (`depth == 0` or
    /// `num_seeds` out of range).
    pub fn generate(
        batch_graph: &CsrGraph,
        num_seeds: usize,
        depth: usize,
        opts: GenerateOptions,
    ) -> Self {
        // lint:allow(wallclock-taint): stage-timing telemetry; block content never reads the clock (suppresses chain: PreparedBlocks::generate → Instant::now)
        let t0 = Instant::now();
        let blocks = generate_blocks_fast(batch_graph, num_seeds, depth, opts);
        PreparedBlocks {
            blocks,
            features: Vec::new(),
            feat_dim: 0,
            labels: Vec::new(),
            output_globals: Vec::new(),
            block_gen_seconds: t0.elapsed().as_secs_f64(),
            gather_seconds: 0.0,
        }
    }

    /// Wraps already-generated blocks (e.g. from the checked baseline).
    pub fn from_blocks(blocks: Vec<Block>) -> Self {
        PreparedBlocks {
            blocks,
            features: Vec::new(),
            feat_dim: 0,
            labels: Vec::new(),
            output_globals: Vec::new(),
            block_gen_seconds: 0.0,
            gather_seconds: 0.0,
        }
    }

    /// The per-layer blocks, input layer first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Source nodes of the innermost layer — the rows whose features the
    /// Prepare stage must gather.
    ///
    /// # Panics
    ///
    /// Panics if the handle holds no blocks.
    pub fn input_srcs(&self) -> &[NodeId] {
        // lint:allow(panic-reachability): infallible in the pipeline — handles are built from generate_blocks_fast, which returns exactly `depth` >= 1 blocks (suppresses chain: prepare_one → PreparedBlocks::input_srcs → .expect())
        self.blocks.first().expect("empty block list").src_nodes()
    }

    /// Destination nodes of the outermost layer — the nodes whose labels
    /// the loss needs.
    ///
    /// # Panics
    ///
    /// Panics if the handle holds no blocks.
    pub fn output_dsts(&self) -> &[NodeId] {
        // lint:allow(panic-reachability): infallible in the pipeline — handles are built from generate_blocks_fast, which returns exactly `depth` >= 1 blocks (suppresses chain: prepare_one → PreparedBlocks::output_dsts → .expect())
        self.blocks.last().expect("empty block list").dst_nodes()
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.blocks.last().map_or(0, |b| b.num_dst())
    }

    /// Attaches the gathered feature matrix (row-major,
    /// `input_srcs().len() × feat_dim`) and the wall-clock seconds the
    /// gather took.
    ///
    /// # Panics
    ///
    /// Panics if the buffer size does not match `input_srcs().len() ×
    /// feat_dim`.
    pub fn set_features(&mut self, features: Vec<f32>, feat_dim: usize, gather_seconds: f64) {
        assert_eq!(
            features.len(),
            self.input_srcs().len() * feat_dim,
            "feature buffer does not match input sources × feat_dim"
        );
        self.features = features;
        self.feat_dim = feat_dim;
        self.gather_seconds += gather_seconds;
    }

    /// Attaches the gathered labels (one per output node) and the
    /// wall-clock seconds the gather took.
    ///
    /// # Panics
    ///
    /// Panics if the label count does not match `num_outputs()`.
    pub fn set_labels(&mut self, labels: Vec<u32>, gather_seconds: f64) {
        assert_eq!(
            labels.len(),
            self.num_outputs(),
            "label count does not match output nodes"
        );
        self.labels = labels;
        self.gather_seconds += gather_seconds;
    }

    /// Attaches the dataset-global ids of the output nodes (one per
    /// output, same order as [`output_dsts`](Self::output_dsts)). The
    /// output ids in the blocks are micro-batch-local; inference consumers
    /// need the globals to map predictions back to dataset nodes.
    ///
    /// # Panics
    ///
    /// Panics if the id count does not match `num_outputs()`.
    pub fn set_output_globals(&mut self, globals: Vec<NodeId>) {
        assert_eq!(
            globals.len(),
            self.num_outputs(),
            "global id count does not match output nodes"
        );
        self.output_globals = globals;
    }

    /// Dataset-global ids of the output nodes; empty unless
    /// [`set_output_globals`](Self::set_output_globals) was called.
    pub fn output_globals(&self) -> &[NodeId] {
        &self.output_globals
    }

    /// Wall-clock seconds spent generating blocks.
    pub fn block_gen_seconds(&self) -> f64 {
        self.block_gen_seconds
    }

    /// Wall-clock seconds spent gathering features/labels.
    pub fn gather_seconds(&self) -> f64 {
        self.gather_seconds
    }

    /// Releases ownership of the payload without copying:
    /// `(blocks, features, feat_dim, labels)`.
    pub fn into_parts(self) -> (Vec<Block>, Vec<f32>, usize, Vec<u32>) {
        (self.blocks, self.features, self.feat_dim, self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use buffalo_graph::generators;

    fn prepared() -> PreparedBlocks {
        let g = generators::barabasi_albert(200, 4, 0.3, 1).unwrap();
        PreparedBlocks::generate(&g, 32, 2, GenerateOptions::default())
    }

    #[test]
    fn generate_records_timing_and_shape() {
        let p = prepared();
        assert_eq!(p.blocks().len(), 2);
        assert_eq!(p.num_outputs(), 32);
        assert!(p.block_gen_seconds() >= 0.0);
        assert_eq!(p.gather_seconds(), 0.0);
        assert_eq!(p.output_dsts().len(), 32);
        assert!(p.input_srcs().len() >= p.output_dsts().len());
    }

    #[test]
    fn payload_moves_through_without_copies() {
        let mut p = prepared();
        let rows = p.input_srcs().len();
        let feats = vec![1.5f32; rows * 8];
        let feat_ptr = feats.as_ptr();
        p.set_features(feats, 8, 0.01);
        let labels = vec![0u32; p.num_outputs()];
        let label_ptr = labels.as_ptr();
        p.set_labels(labels, 0.02);
        assert!((p.gather_seconds() - 0.03).abs() < 1e-12);
        let (blocks, feats, dim, labels) = p.into_parts();
        assert_eq!(blocks.len(), 2);
        assert_eq!(dim, 8);
        // Same heap buffers end to end.
        assert_eq!(feats.as_ptr(), feat_ptr);
        assert_eq!(labels.as_ptr(), label_ptr);
    }

    #[test]
    #[should_panic(expected = "feature buffer does not match")]
    fn mismatched_features_are_rejected() {
        let mut p = prepared();
        p.set_features(vec![0.0; 3], 8, 0.0);
    }

    #[test]
    #[should_panic(expected = "label count does not match")]
    fn mismatched_labels_are_rejected() {
        let mut p = prepared();
        p.set_labels(vec![0; 1], 0.0);
    }
}
