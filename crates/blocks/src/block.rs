//! The block data structure.

use buffalo_graph::NodeId;

/// Connectivity for one GNN layer: a bipartite message-flow graph from
/// source nodes to destination nodes.
///
/// Ids in `dst_nodes` and `src_nodes` are *batch-local* node ids. Following
/// the usual MFG convention, the first `dst_nodes.len()` entries of
/// `src_nodes` are the destinations themselves (a destination always needs
/// its own previous-layer embedding), followed by pure sources.
///
/// Edges are stored CSR-style per destination; the values in
/// [`src_positions`](Self::src_positions) index into `src_nodes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    dst_nodes: Vec<NodeId>,
    src_nodes: Vec<NodeId>,
    offsets: Vec<usize>,
    indices: Vec<u32>,
}

impl Block {
    /// Assembles a block from parts.
    ///
    /// # Panics
    ///
    /// Panics if the CSR shape is inconsistent, if `src_nodes` does not
    /// start with `dst_nodes`, or if any index is out of range of
    /// `src_nodes`.
    pub fn from_parts(
        dst_nodes: Vec<NodeId>,
        src_nodes: Vec<NodeId>,
        offsets: Vec<usize>,
        indices: Vec<u32>,
    ) -> Self {
        assert_eq!(offsets.len(), dst_nodes.len() + 1, "offsets length");
        assert_eq!(*offsets.last().unwrap_or(&0), indices.len(), "last offset");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert!(
            src_nodes.len() >= dst_nodes.len() && src_nodes[..dst_nodes.len()] == dst_nodes[..],
            "src_nodes must begin with dst_nodes"
        );
        assert!(
            indices.iter().all(|&i| (i as usize) < src_nodes.len()),
            "edge index out of range"
        );
        Block {
            dst_nodes,
            src_nodes,
            offsets,
            indices,
        }
    }

    /// Destination (output) nodes of this layer, batch-local ids.
    pub fn dst_nodes(&self) -> &[NodeId] {
        &self.dst_nodes
    }

    /// Source (input) nodes of this layer, batch-local ids; begins with the
    /// destination nodes.
    pub fn src_nodes(&self) -> &[NodeId] {
        &self.src_nodes
    }

    /// Number of destinations.
    pub fn num_dst(&self) -> usize {
        self.dst_nodes.len()
    }

    /// Number of sources (including the embedded destinations).
    pub fn num_src(&self) -> usize {
        self.src_nodes.len()
    }

    /// Total number of message edges.
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// In-degree of the `i`-th destination.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_dst()`.
    pub fn in_degree(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Positions (into [`src_nodes`](Self::src_nodes)) of the sources
    /// feeding the `i`-th destination.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_dst()`.
    pub fn src_positions(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Batch-local ids of the sources feeding the `i`-th destination.
    pub fn srcs_of(&self, i: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.src_positions(i)
            .iter()
            .map(move |&p| self.src_nodes[p as usize])
    }

    /// Maximum in-degree over all destinations (0 if there are none).
    pub fn max_in_degree(&self) -> usize {
        (0..self.num_dst())
            .map(|i| self.in_degree(i))
            .max()
            .unwrap_or(0)
    }

    /// Approximate in-memory footprint of the block structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.dst_nodes.len() * std::mem::size_of::<NodeId>()
            + self.src_nodes.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> Block {
        // dst = [5, 9]; srcs = [5, 9, 2, 3]; 5 <- {9, 2}; 9 <- {2, 3, 5}
        Block::from_parts(
            vec![5, 9],
            vec![5, 9, 2, 3],
            vec![0, 2, 5],
            vec![1, 2, 2, 3, 0],
        )
    }

    #[test]
    fn accessors_agree_with_parts() {
        let b = sample_block();
        assert_eq!(b.num_dst(), 2);
        assert_eq!(b.num_src(), 4);
        assert_eq!(b.num_edges(), 5);
        assert_eq!(b.in_degree(0), 2);
        assert_eq!(b.in_degree(1), 3);
        assert_eq!(b.max_in_degree(), 3);
        assert_eq!(b.srcs_of(0).collect::<Vec<_>>(), vec![9, 2]);
        assert_eq!(b.srcs_of(1).collect::<Vec<_>>(), vec![2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "begin with dst_nodes")]
    fn rejects_src_not_prefixed_by_dst() {
        let _ = Block::from_parts(vec![1], vec![2, 1], vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "edge index out of range")]
    fn rejects_out_of_range_index() {
        let _ = Block::from_parts(vec![1], vec![1], vec![0, 1], vec![5]);
    }

    #[test]
    #[should_panic(expected = "offsets length")]
    fn rejects_bad_offsets_len() {
        let _ = Block::from_parts(vec![1], vec![1], vec![0], vec![]);
    }

    #[test]
    fn empty_block_is_valid() {
        let b = Block::from_parts(vec![], vec![], vec![0], vec![]);
        assert_eq!(b.num_dst(), 0);
        assert_eq!(b.max_in_degree(), 0);
    }
}
