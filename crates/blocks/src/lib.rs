//! Block (message-flow-graph) generation.
//!
//! A *block* summarizes the connectivity one GNN layer needs: which source
//! nodes feed which destination nodes. Training an `L`-layer GNN over a
//! sampled batch needs `L` blocks, built from the output layer inward — the
//! destinations of layer `l` are the sources of layer `l + 1`.
//!
//! The Buffalo paper identifies block generation as a major cost (§III,
//! Figure 5: 54.3 % of iteration time) and contributes a fast method
//! (§IV-E): represent the sampled subgraph as CSR, take *all* neighbors of
//! each center node directly from its CSR row (no repeated connection
//! checks against the original graph), and process rows in parallel at the
//! node level. This crate implements both that fast path
//! ([`generate_blocks_fast`]) and the baseline slow path
//! ([`generate_blocks_checked`]) that re-derives connectivity from the
//! original graph with per-edge membership checks, as Betty-style systems
//! do — the comparison behind Figure 12.

#![warn(missing_docs)]

mod block;
mod generate;
mod prepared;
mod reverse;

pub use block::Block;
pub use generate::{
    generate_blocks_checked, generate_blocks_fast, GenerateOptions, DEFAULT_PARALLEL_THRESHOLD,
};
pub use prepared::PreparedBlocks;
pub use reverse::ReverseIndex;
